#ifndef PAM_SERVE_NET_SERVER_H_
#define PAM_SERVE_NET_SERVER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pam/serve/protocol.h"
#include "pam/serve/server.h"

namespace pam::serve {

/// Shape of the TCP front-end.
struct NetServerConfig {
  /// Address to bind (IPv4 dotted quad). Loopback by default: mining
  /// service exposure to a real network is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// Port to bind; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Honor kShutdown frames (the CI smoke uses this for a deterministic
  /// remote stop). Off by default: a stray client must not stop the
  /// daemon, so kShutdown answers kError{kShutdownForbidden}.
  bool allow_shutdown = false;
  /// Per-connection incoming frame size limit (oversize = typed error +
  /// close; the stream cannot be resynchronized).
  std::size_t max_frame_bytes = FrameReader::kDefaultMaxFrameBytes;
};

/// The poll-based TCP front-end of the mining service (DESIGN.md §15):
/// one event-loop thread multiplexing a listener and every client
/// connection, speaking the versioned wire protocol of
/// pam/serve/protocol.h over a MiningServer it does not own.
///
/// Connection state machine: accept -> kHello/kHelloAck version
/// negotiation -> request frames. Each kMine is handed to
/// MiningServer::SubmitWith with a connection-held CancelToken; the
/// worker's completion callback encodes the kResponse frame off the loop
/// thread and queues it through a self-pipe, so the loop never blocks on
/// mining and responses may interleave out of submission order (tags
/// correlate them). kCancel fires the token of an in-flight tag; kStats
/// answers synchronously. A client that half-closes (EOF after its last
/// request) still receives every pending response before the server
/// closes; a connection that dies mid-flight has its in-flight tokens
/// cancelled so the pool is not wasted on an unreachable client.
///
/// Protocol errors are typed kError frames: version mismatch, malformed
/// or oversize frames, and frames before hello close the connection
/// (framing is lost); duplicate/unknown tags and forbidden shutdown are
/// per-request refusals on a still-healthy stream.
class NetServer {
 public:
  /// `server` must outlive this object. Call Start() to begin serving.
  NetServer(MiningServer* server, const NetServerConfig& config);
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the event loop. Fails on socket errors
  /// (port in use, bad address).
  Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Blocks until a client's kShutdown frame is honored or Stop() is
  /// called; returns true for the former. The daemon's main thread parks
  /// here, then runs MiningServer::Shutdown() and Stop().
  bool WaitForShutdownRequest();

  /// Stops accepting, flushes what can be flushed without blocking,
  /// closes every connection (cancelling in-flight tokens), and joins
  /// the loop. Idempotent; the destructor calls it.
  void Stop();

  /// Connections accepted over the server's lifetime.
  std::uint64_t ConnectionsAccepted() const;

 private:
  struct SharedState;
  struct Connection;

  void LoopMain();
  void AcceptNew();
  /// Reads everything available; returns false when the connection died.
  bool ReadFrom(Connection& conn);
  /// Decodes and dispatches every complete frame in the read buffer;
  /// returns false when the connection must close immediately.
  bool DispatchFrames(Connection& conn);
  void HandleMine(Connection& conn, std::span<const std::byte> body);
  /// Appends a frame to the connection's write buffer.
  void QueueWrite(Connection& conn, std::vector<std::byte> frame);
  void QueueError(Connection& conn, WireError error, std::string message);
  /// Flushes the write buffer; returns false when the connection died.
  bool FlushWrites(Connection& conn);
  void CloseConnection(std::uint64_t conn_id, bool cancel_inflight);
  void DrainCompletions();

  MiningServer* const server_;
  const NetServerConfig config_;
  std::shared_ptr<SharedState> state_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> connections_;
  std::thread loop_;
};

/// A minimal blocking client for the wire protocol — the transport half
/// of the pam_client CLI and the loopback test harness. Not thread-safe;
/// one request/response conversation per instance.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects and performs the hello/ack version negotiation. On a
  /// version-mismatch kError the connection is closed and the error
  /// status carries the server's message.
  Status Connect(const std::string& host, int port);

  /// The negotiated protocol version (valid after Connect).
  ProtocolVersion version() const { return version_; }

  Status SendMine(std::uint64_t tag, const MiningRequest& request);
  Status SendCancel(std::uint64_t tag);
  Status SendStats(std::uint64_t tag);
  Status SendShutdown();
  /// Sends raw bytes as-is (tests use this to poke garbage at a server).
  Status SendRaw(std::span<const std::byte> bytes);
  /// Half-close: no more requests, but responses still flow back.
  void CloseWrite();
  void Close();

  /// One server->client frame, decoded per its type.
  struct ServerFrame {
    FrameType type = FrameType::kError;
    ResponseFrame response;            // kResponse
    StatsResponseFrame stats;          // kStatsResponse
    ErrorFrame error;                  // kError
  };

  /// Blocks for the next server frame. Fails on EOF, a dead socket, or a
  /// malformed stream.
  Result<ServerFrame> Recv();

 private:
  Status SendFrame(const std::vector<std::byte>& frame);

  int fd_ = -1;
  ProtocolVersion version_ = kMaxProtocolVersion;
  FrameReader reader_;
};

}  // namespace pam::serve

#endif  // PAM_SERVE_NET_SERVER_H_
