#ifndef PAM_SERVE_RESULT_CACHE_H_
#define PAM_SERVE_RESULT_CACHE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "pam/api/session.h"

namespace pam::serve {

/// One cached mining result: the immutable MiningReport payload a hit
/// serves verbatim. Mining output depends only on the dataset and the
/// result-affecting config (never on the formulation, rank count, or
/// scheduling), so a report cached from any run answers every equivalent
/// later request — byte-identical to re-mining, per the library's
/// exactness contract.
struct CachedResult {
  std::string dataset;
  MiningReport report;
  /// Approximate resident footprint, the budget accounting unit.
  std::size_t bytes = 0;
};

using ResultHandle = std::shared_ptr<const CachedResult>;

/// LRU/TTL/budget cache of finished MiningReports, keyed on
/// (dataset id, MiningRequest::CanonicalDigest()) — the serving-side
/// complement of the DatasetCache (which shares inputs; this shares
/// outputs). Identical requests are common in serving mixes and results
/// over a registered dataset are immutable, so a hit skips the dataset
/// touch and the rank lease entirely.
///
/// Entries hold fully-materialized reports (no loaders): Put() is called
/// by a worker that just finished mining, Get() by a worker about to. The
/// same degradation rules as the dataset cache apply: over budget, LRU
/// unpinned entries are evicted first, and a report that alone exceeds
/// the budget is simply not cached. Handles pin entries (use_count > 1),
/// so eviction never frees a report mid-reply.
///
/// Thread-safe.
class ResultCache {
 public:
  /// `budget_bytes` caps resident report bytes (0 = unlimited); `ttl_ms`
  /// drops entries idle longer than this (0 = never).
  explicit ResultCache(std::size_t budget_bytes = 0, double ttl_ms = 0)
      : budget_bytes_(budget_bytes), ttl_ms_(ttl_ms) {}

  /// The cached report for (dataset, digest), or nullptr on a miss.
  ResultHandle Get(const std::string& dataset, std::uint64_t digest);

  /// Caches `report` under (dataset, digest). Overwrites any existing
  /// entry (idempotent for concurrent identical runs). A report that
  /// cannot fit the budget even after evicting every unpinned entry is
  /// dropped silently — the response it came from is unaffected.
  void Put(const std::string& dataset, std::uint64_t digest,
           MiningReport report);

  /// Drops every entry whose dataset id is `dataset` (dataset
  /// re-registration invalidates derived results).
  void Invalidate(const std::string& dataset);

  std::uint64_t Hits() const;
  std::uint64_t Misses() const;
  std::uint64_t Evictions() const;
  std::size_t ResidentBytes() const;
  std::size_t BudgetBytes() const { return budget_bytes_; }

 private:
  using Key = std::pair<std::string, std::uint64_t>;
  struct Entry {
    ResultHandle result;
    std::chrono::steady_clock::time_point last_use{};
  };

  void EvictLocked(std::map<Key, Entry>::iterator it, const char* why);
  void SweepTtlLocked(std::chrono::steady_clock::time_point now);
  bool MakeRoomLocked(std::size_t needed);

  const std::size_t budget_bytes_;
  const double ttl_ms_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Approximate resident bytes of a report (itemset storage + rules +
/// metrics vectors) — the ResultCache budget unit.
std::size_t ReportBytes(const MiningReport& report);

}  // namespace pam::serve

#endif  // PAM_SERVE_RESULT_CACHE_H_
