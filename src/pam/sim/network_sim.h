#ifndef PAM_SIM_NETWORK_SIM_H_
#define PAM_SIM_NETWORK_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pam {

/// A message to be injected into the simulated network. Messages from the
/// same source are injected in vector order (a node has one injection
/// port and serializes its own sends, as on the paper's Cray T3E where a
/// processor drives one link at a time).
struct SimMessage {
  int src = 0;
  int dst = 0;
  std::uint64_t bytes = 0;
};

/// Interconnect topologies for the simulator. kFullyConnectedOnePort is
/// the paper's idealized "fully connected but one transfer at a time per
/// node"; kRing and kTorus3D route over shared links (dimension-order on
/// the torus, matching the T3E's network).
enum class Topology { kFullyConnectedOnePort, kRing, kTorus3D };

/// Result of simulating a communication phase.
struct SimResult {
  /// Time until the last byte is delivered (seconds).
  double makespan = 0.0;
  /// Sum over links of busy time divided by (#links * makespan) — how
  /// evenly the pattern loads the network.
  double link_utilization = 0.0;
  /// The busiest link's busy time (seconds); contention shows up as this
  /// approaching the makespan while utilization stays low.
  double max_link_busy = 0.0;
};

/// A store-and-forward flow-level network simulator. Each directed link
/// has a fixed bandwidth; a message occupies every link of its route for
/// `bytes / bandwidth + latency` of busy time, links serve one message at
/// a time in arrival order, and a node injects its own messages
/// sequentially. This is deliberately simple — it is the paper's
/// back-of-envelope network model made executable, used to *derive* the
/// contention multiplier that the analytic cost model charges DD's
/// unstructured all-to-all (see MachineModel::dd_contention), instead of
/// hand-picking it.
class NetworkSimulator {
 public:
  /// `num_nodes` nodes on `topology`; torus shape is the most cubic
  /// factorization of num_nodes.
  NetworkSimulator(int num_nodes, Topology topology,
                   double bytes_per_second, double latency_seconds);

  /// Simulates delivering `messages`; per-source injection order is the
  /// order within the vector.
  SimResult Run(const std::vector<SimMessage>& messages) const;

  /// Canonical patterns the algorithms use.
  /// DD: every node sends `bytes_per_peer` to every other node.
  static std::vector<SimMessage> AllToAll(int num_nodes,
                                          std::uint64_t bytes_per_peer);
  /// IDD: P-1 rounds of neighbor shifts of `bytes_per_shift`.
  static std::vector<SimMessage> RingShift(int num_nodes,
                                           std::uint64_t bytes_per_shift,
                                           int rounds);

  /// Route (sequence of directed link ids) from src to dst; exposed for
  /// tests.
  std::vector<int> Route(int src, int dst) const;

  int num_links() const { return static_cast<int>(num_links_); }
  /// Torus dimensions chosen for num_nodes (1x1xN etc. degenerate shapes
  /// allowed); {num_nodes, 1, 1} style for rings.
  const int* torus_shape() const { return shape_; }

 private:
  int LinkId(int from_node, int to_node) const;
  int NodeId(int x, int y, int z) const;

  int num_nodes_;
  Topology topology_;
  double bytes_per_second_;
  double latency_seconds_;
  int shape_[3] = {1, 1, 1};
  std::size_t num_links_ = 0;
};

/// Convenience: the effective contention multiplier of a pattern —
/// simulated makespan divided by the ideal one-port lower bound
/// (max per-node injected bytes / bandwidth). The cost model's
/// dd_contention corresponds to AllToAll on kTorus3D.
double ContentionFactor(const NetworkSimulator& sim,
                        const std::vector<SimMessage>& messages,
                        double bytes_per_second);

}  // namespace pam

#endif  // PAM_SIM_NETWORK_SIM_H_
