#include "pam/sim/network_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pam {
namespace {

// Most-cubic factorization of n into a*b*c, a >= b >= c.
void FactorTorus(int n, int shape[3]) {
  int best[3] = {n, 1, 1};
  double best_score = 1e18;
  for (int a = 1; a * a * a <= n; ++a) {
    if (n % a != 0) continue;
    const int rest = n / a;
    for (int b = a; b * b <= rest; ++b) {
      if (rest % b != 0) continue;
      const int c = rest / b;
      // Score: surface-to-volume style preference for cubic shapes.
      const double score = static_cast<double>(c) - static_cast<double>(a);
      if (score < best_score) {
        best_score = score;
        best[0] = c;
        best[1] = b;
        best[2] = a;
      }
    }
  }
  shape[0] = best[0];
  shape[1] = best[1];
  shape[2] = best[2];
}

}  // namespace

NetworkSimulator::NetworkSimulator(int num_nodes, Topology topology,
                                   double bytes_per_second,
                                   double latency_seconds)
    : num_nodes_(num_nodes),
      topology_(topology),
      bytes_per_second_(bytes_per_second),
      latency_seconds_(latency_seconds) {
  assert(num_nodes >= 1);
  // Uniform id space: six directional port slots per node (rings use two,
  // the one-port model uses an out/in pair; unused slots stay idle and
  // are excluded from utilization).
  num_links_ = static_cast<std::size_t>(num_nodes_) * 6;
  switch (topology_) {
    case Topology::kFullyConnectedOnePort:
    case Topology::kRing:
      shape_[0] = num_nodes_;
      break;
    case Topology::kTorus3D:
      FactorTorus(num_nodes_, shape_);
      break;
  }
}

int NetworkSimulator::NodeId(int x, int y, int z) const {
  return (z * shape_[1] + y) * shape_[0] + x;
}

int NetworkSimulator::LinkId(int from_node, int direction) const {
  // direction: ring/torus directional port index.
  return from_node * 6 + direction;
}

std::vector<int> NetworkSimulator::Route(int src, int dst) const {
  std::vector<int> route;
  if (src == dst) return route;
  switch (topology_) {
    case Topology::kFullyConnectedOnePort:
      route.push_back(src * 2);      // src out-port
      route.push_back(dst * 2 + 1);  // dst in-port
      return route;
    case Topology::kRing: {
      const int n = num_nodes_;
      const int forward = (dst - src + n) % n;
      const int backward = (src - dst + n) % n;
      int node = src;
      if (forward <= backward) {
        for (int h = 0; h < forward; ++h) {
          route.push_back(LinkId(node, 0));
          node = (node + 1) % n;
        }
      } else {
        for (int h = 0; h < backward; ++h) {
          route.push_back(LinkId(node, 1));
          node = (node + n - 1) % n;
        }
      }
      return route;
    }
    case Topology::kTorus3D: {
      int from[3] = {src % shape_[0], (src / shape_[0]) % shape_[1],
                     src / (shape_[0] * shape_[1])};
      const int to[3] = {dst % shape_[0], (dst / shape_[0]) % shape_[1],
                         dst / (shape_[0] * shape_[1])};
      // Dimension-order routing, shorter wrap direction per dimension.
      for (int d = 0; d < 3; ++d) {
        const int size = shape_[d];
        if (size == 1) continue;
        while (from[d] != to[d]) {
          const int fwd = (to[d] - from[d] + size) % size;
          const int bwd = (from[d] - to[d] + size) % size;
          const bool go_forward = size == 2 || fwd <= bwd;
          const int node = NodeId(from[0], from[1], from[2]);
          route.push_back(LinkId(node, d * 2 + (go_forward ? 0 : 1)));
          from[d] = go_forward ? (from[d] + 1) % size
                               : (from[d] + size - 1) % size;
        }
      }
      return route;
    }
  }
  return route;
}

SimResult NetworkSimulator::Run(
    const std::vector<SimMessage>& messages) const {
  // Per-source FIFO queues preserve each node's injection order; global
  // processing round-robins over sources to approximate concurrent
  // injection deterministically.
  std::vector<std::vector<std::size_t>> per_source(
      static_cast<std::size_t>(num_nodes_));
  for (std::size_t i = 0; i < messages.size(); ++i) {
    assert(messages[i].src >= 0 && messages[i].src < num_nodes_);
    assert(messages[i].dst >= 0 && messages[i].dst < num_nodes_);
    per_source[static_cast<std::size_t>(messages[i].src)].push_back(i);
  }

  std::vector<double> link_free(num_links_, 0.0);
  std::vector<double> link_busy(num_links_, 0.0);
  std::vector<double> injection_ready(static_cast<std::size_t>(num_nodes_),
                                      0.0);
  double makespan = 0.0;

  std::size_t round = 0;
  bool any = true;
  while (any) {
    any = false;
    for (int s = 0; s < num_nodes_; ++s) {
      const auto& queue = per_source[static_cast<std::size_t>(s)];
      if (round >= queue.size()) continue;
      any = true;
      const SimMessage& msg = messages[queue[round]];
      if (msg.src == msg.dst || msg.bytes == 0) continue;
      const double service =
          latency_seconds_ +
          static_cast<double>(msg.bytes) / bytes_per_second_;
      double t = injection_ready[static_cast<std::size_t>(s)];
      bool first_hop = true;
      for (int link : Route(msg.src, msg.dst)) {
        const double start =
            std::max(t, link_free[static_cast<std::size_t>(link)]);
        const double end = start + service;
        link_free[static_cast<std::size_t>(link)] = end;
        link_busy[static_cast<std::size_t>(link)] += service;
        t = end;
        if (first_hop) {
          injection_ready[static_cast<std::size_t>(s)] = end;
          first_hop = false;
        }
      }
      makespan = std::max(makespan, t);
    }
    ++round;
  }

  SimResult result;
  result.makespan = makespan;
  double busy_total = 0.0;
  std::size_t used_links = 0;
  for (double b : link_busy) {
    busy_total += b;
    if (b > 0.0) ++used_links;
    result.max_link_busy = std::max(result.max_link_busy, b);
  }
  if (makespan > 0.0 && used_links > 0) {
    result.link_utilization =
        busy_total / (static_cast<double>(used_links) * makespan);
  }
  return result;
}

std::vector<SimMessage> NetworkSimulator::AllToAll(
    int num_nodes, std::uint64_t bytes_per_peer) {
  std::vector<SimMessage> messages;
  for (int s = 0; s < num_nodes; ++s) {
    for (int offset = 1; offset < num_nodes; ++offset) {
      messages.push_back(
          SimMessage{s, (s + offset) % num_nodes, bytes_per_peer});
    }
  }
  return messages;
}

std::vector<SimMessage> NetworkSimulator::RingShift(
    int num_nodes, std::uint64_t bytes_per_shift, int rounds) {
  std::vector<SimMessage> messages;
  for (int r = 0; r < rounds; ++r) {
    for (int s = 0; s < num_nodes; ++s) {
      messages.push_back(
          SimMessage{s, (s + 1) % num_nodes, bytes_per_shift});
    }
  }
  return messages;
}

double ContentionFactor(const NetworkSimulator& sim,
                        const std::vector<SimMessage>& messages,
                        double bytes_per_second) {
  std::vector<std::uint64_t> injected;
  for (const SimMessage& m : messages) {
    if (static_cast<std::size_t>(m.src) >= injected.size()) {
      injected.resize(static_cast<std::size_t>(m.src) + 1, 0);
    }
    injected[static_cast<std::size_t>(m.src)] += m.bytes;
  }
  std::uint64_t max_injected = 0;
  for (std::uint64_t b : injected) max_injected = std::max(max_injected, b);
  if (max_injected == 0) return 1.0;
  const double ideal =
      static_cast<double>(max_injected) / bytes_per_second;
  return sim.Run(messages).makespan / ideal;
}

}  // namespace pam
