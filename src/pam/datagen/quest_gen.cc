#include "pam/datagen/quest_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "pam/util/prng.h"

namespace pam {
namespace {

struct Pattern {
  std::vector<Item> items;  // sorted
  double corruption = 0.5;
};

// Uniform item draw, redirected into the hot prefix [0, hot_items) with
// probability hot_item_mass when the skewed-prefix mode is on. The guard
// comes first so the RNG stream is untouched when the mode is off —
// seed-pinned datasets generated before this knob existed stay identical.
Item DrawItem(const QuestConfig& cfg, Prng& rng) {
  if (cfg.hot_items > 0 && cfg.hot_item_mass > 0.0 &&
      rng.NextDouble() < cfg.hot_item_mass) {
    return static_cast<Item>(
        rng.NextBounded(std::min(cfg.hot_items, cfg.num_items)));
  }
  return static_cast<Item>(rng.NextBounded(cfg.num_items));
}

// Builds the pool of "maximal potentially frequent" patterns.
std::vector<Pattern> BuildPatterns(const QuestConfig& cfg, Prng& rng,
                                   std::vector<double>& cumulative_weight) {
  std::vector<Pattern> patterns(cfg.num_patterns);
  std::vector<double> weights(cfg.num_patterns);

  std::vector<Item> scratch;
  for (std::size_t p = 0; p < cfg.num_patterns; ++p) {
    Pattern& pat = patterns[p];
    std::size_t len = std::max<std::uint64_t>(
        1, rng.NextPoisson(cfg.avg_pattern_len));
    len = std::min<std::size_t>(len, cfg.num_items);

    scratch.clear();
    if (p > 0 && !patterns[p - 1].items.empty()) {
      // Borrow a correlated fraction from the previous pattern.
      double frac = std::min(1.0, rng.NextExponential(cfg.correlation));
      auto take = static_cast<std::size_t>(
          std::round(frac * static_cast<double>(len)));
      take = std::min(take, patterns[p - 1].items.size());
      std::vector<Item> prev = patterns[p - 1].items;
      for (std::size_t i = 0; i < take; ++i) {
        const std::size_t idx = rng.NextBounded(prev.size());
        scratch.push_back(prev[idx]);
        prev.erase(prev.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    }
    while (scratch.size() < len) {
      scratch.push_back(DrawItem(cfg, rng));
    }
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    pat.items = scratch;

    double c = cfg.corruption_mean + 0.1 * rng.NextGaussian();
    pat.corruption = std::clamp(c, 0.0, 0.95);
    weights[p] = rng.NextExponential(1.0);
  }

  // Normalize weights into a cumulative distribution for pattern picking.
  double total = 0.0;
  for (double w : weights) total += w;
  cumulative_weight.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cumulative_weight[i] = acc;
  }
  if (!cumulative_weight.empty()) cumulative_weight.back() = 1.0;
  return patterns;
}

std::size_t PickPattern(const std::vector<double>& cumulative, Prng& rng) {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
  if (it == cumulative.end()) return cumulative.size() - 1;
  return static_cast<std::size_t>(it - cumulative.begin());
}

}  // namespace

namespace {

QuestConfig Preset(std::size_t n, double t, double i, std::uint64_t seed) {
  QuestConfig cfg;
  cfg.num_transactions = n;
  cfg.avg_transaction_len = t;
  cfg.avg_pattern_len = i;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

QuestConfig QuestT5I2(std::size_t n, std::uint64_t seed) {
  return Preset(n, 5, 2, seed);
}
QuestConfig QuestT10I4(std::size_t n, std::uint64_t seed) {
  return Preset(n, 10, 4, seed);
}
QuestConfig QuestT15I6(std::size_t n, std::uint64_t seed) {
  return Preset(n, 15, 6, seed);
}
QuestConfig QuestT20I6(std::size_t n, std::uint64_t seed) {
  return Preset(n, 20, 6, seed);
}

TransactionDatabase GenerateQuest(const QuestConfig& cfg) {
  Prng rng(cfg.seed);
  std::vector<double> cumulative;
  const std::vector<Pattern> patterns = BuildPatterns(cfg, rng, cumulative);

  TransactionDatabase db;
  std::vector<Item> tx;
  std::vector<Item> instance;
  for (std::size_t t = 0; t < cfg.num_transactions; ++t) {
    std::size_t target = std::max<std::uint64_t>(
        1, rng.NextPoisson(cfg.avg_transaction_len));
    target = std::min<std::size_t>(target, cfg.num_items);

    tx.clear();
    // Guard against pathological corruption levels looping forever.
    int attempts = 0;
    while (tx.size() < target && attempts < 64) {
      ++attempts;
      const Pattern& pat = patterns[PickPattern(cumulative, rng)];
      instance.clear();
      for (Item item : pat.items) {
        // Drop items while the draw stays below the corruption level.
        if (rng.NextDouble() >= pat.corruption) instance.push_back(item);
      }
      if (instance.empty()) continue;
      if (tx.size() + instance.size() > target && !tx.empty()) {
        // Pattern does not fit: add anyway half the time, drop otherwise.
        if (rng.NextU64() & 1) {
          tx.insert(tx.end(), instance.begin(), instance.end());
        }
        break;
      }
      tx.insert(tx.end(), instance.begin(), instance.end());
    }
    if (tx.empty()) {
      tx.push_back(DrawItem(cfg, rng));
    }
    db.Add(tx);
  }
  return db;
}

}  // namespace pam
