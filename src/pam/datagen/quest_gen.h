#ifndef PAM_DATAGEN_QUEST_GEN_H_
#define PAM_DATAGEN_QUEST_GEN_H_

#include <cstdint>

#include "pam/tdb/database.h"

namespace pam {

/// Parameters for the IBM-Quest-style synthetic market-basket generator
/// described in Agrawal & Srikant, "Fast Algorithms for Mining Association
/// Rules" (VLDB 1994), Section 4.1 — the tool cited as [17] by the paper.
/// The paper's experiments use T15.I6 data (average transaction length 15,
/// average maximal potentially-frequent itemset size 6).
struct QuestConfig {
  /// D: number of transactions to generate.
  std::size_t num_transactions = 10000;
  /// N: number of distinct items.
  Item num_items = 1000;
  /// |T|: average transaction length (Poisson distributed per transaction).
  double avg_transaction_len = 15.0;
  /// |I|: average size of the maximal potentially frequent itemsets
  /// (Poisson distributed per pattern).
  double avg_pattern_len = 6.0;
  /// |L|: number of maximal potentially frequent itemsets in the pool.
  std::size_t num_patterns = 2000;
  /// Mean fraction of a pattern's items shared with the previous pattern
  /// (exponentially distributed per pattern); models cross-pattern
  /// correlation.
  double correlation = 0.5;
  /// Mean of the per-pattern corruption level (clamped normal, sd 0.1):
  /// when instantiating a pattern into a transaction, items are dropped
  /// while a uniform draw stays below the corruption level.
  double corruption_mean = 0.5;
  /// Skewed-prefix mode (off when hot_items == 0 or hot_item_mass == 0):
  /// every uniform item draw is redirected into the "hot prefix"
  /// [0, hot_items) with probability hot_item_mass. Patterns — and hence
  /// candidates — then pile up on a few first-items, which is exactly the
  /// workload where a candidate-count partitioner misjudges per-candidate
  /// cost (the adaptive balancer's target scenario, DESIGN.md §14). When
  /// off, the generator's random stream is bit-identical to before the
  /// knob existed.
  Item hot_items = 0;
  double hot_item_mass = 0.0;
  /// Seed for the deterministic generator.
  std::uint64_t seed = 1;
};

/// The classic named dataset families of the Apriori literature
/// (Agrawal–Srikant Table 3 uses T5.I2, T10.I2, T10.I4, T20.I2, T20.I4,
/// T20.I6; the paper mines T15.I6). "Tx.Iy" = average transaction length
/// x, average maximal pattern length y.
QuestConfig QuestT5I2(std::size_t num_transactions, std::uint64_t seed = 1);
QuestConfig QuestT10I4(std::size_t num_transactions, std::uint64_t seed = 1);
QuestConfig QuestT15I6(std::size_t num_transactions, std::uint64_t seed = 1);
QuestConfig QuestT20I6(std::size_t num_transactions, std::uint64_t seed = 1);

/// Generates a synthetic transaction database.
///
/// Pattern pool construction:
///  * each pattern's length ~ max(1, Poisson(|I|));
///  * a fraction (exp-distributed, mean `correlation`) of items is drawn
///    from the previous pattern, the rest uniformly at random;
///  * each pattern carries an exponential(1) weight, normalized into a
///    discrete picking distribution, and a corruption level.
///
/// Transaction assembly:
///  * length ~ Poisson(|T|);
///  * patterns are picked by weight and corrupted (items dropped while
///    u < corruption);
///  * if a corrupted pattern does not fit in the remaining budget it is
///    added anyway in half of the cases and dropped otherwise (the
///    Agrawal–Srikant rule, simplified to per-transaction scope).
TransactionDatabase GenerateQuest(const QuestConfig& config);

}  // namespace pam

#endif  // PAM_DATAGEN_QUEST_GEN_H_
