# Empty dependencies file for database_server.
# This may be replaced when dependencies are built.
