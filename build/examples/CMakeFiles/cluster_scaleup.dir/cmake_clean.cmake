file(REMOVE_RECURSE
  "CMakeFiles/cluster_scaleup.dir/cluster_scaleup.cpp.o"
  "CMakeFiles/cluster_scaleup.dir/cluster_scaleup.cpp.o.d"
  "cluster_scaleup"
  "cluster_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
