# Empty dependencies file for cluster_scaleup.
# This may be replaced when dependencies are built.
