# Empty dependencies file for parallel_mining.
# This may be replaced when dependencies are built.
