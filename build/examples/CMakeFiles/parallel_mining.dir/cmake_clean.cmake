file(REMOVE_RECURSE
  "CMakeFiles/parallel_mining.dir/parallel_mining.cpp.o"
  "CMakeFiles/parallel_mining.dir/parallel_mining.cpp.o.d"
  "parallel_mining"
  "parallel_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
