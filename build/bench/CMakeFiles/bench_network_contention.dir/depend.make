# Empty dependencies file for bench_network_contention.
# This may be replaced when dependencies are built.
