file(REMOVE_RECURSE
  "CMakeFiles/bench_network_contention.dir/bench_network_contention.cpp.o"
  "CMakeFiles/bench_network_contention.dir/bench_network_contention.cpp.o.d"
  "bench_network_contention"
  "bench_network_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
