# Empty dependencies file for bench_pass_breakdown.
# This may be replaced when dependencies are built.
