file(REMOVE_RECURSE
  "CMakeFiles/bench_pass_breakdown.dir/bench_pass_breakdown.cpp.o"
  "CMakeFiles/bench_pass_breakdown.dir/bench_pass_breakdown.cpp.o.d"
  "bench_pass_breakdown"
  "bench_pass_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pass_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
