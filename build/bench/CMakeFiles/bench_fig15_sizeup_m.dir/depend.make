# Empty dependencies file for bench_fig15_sizeup_m.
# This may be replaced when dependencies are built.
