# Empty compiler generated dependencies file for bench_fig14_sizeup_n.
# This may be replaced when dependencies are built.
