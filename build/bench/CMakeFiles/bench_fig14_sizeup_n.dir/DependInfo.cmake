
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_sizeup_n.cpp" "bench/CMakeFiles/bench_fig14_sizeup_n.dir/bench_fig14_sizeup_n.cpp.o" "gcc" "bench/CMakeFiles/bench_fig14_sizeup_n.dir/bench_fig14_sizeup_n.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pam_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_tdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
