file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sizeup_n.dir/bench_fig14_sizeup_n.cpp.o"
  "CMakeFiles/bench_fig14_sizeup_n.dir/bench_fig14_sizeup_n.cpp.o.d"
  "bench_fig14_sizeup_n"
  "bench_fig14_sizeup_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sizeup_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
