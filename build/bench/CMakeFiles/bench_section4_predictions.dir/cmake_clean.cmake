file(REMOVE_RECURSE
  "CMakeFiles/bench_section4_predictions.dir/bench_section4_predictions.cpp.o"
  "CMakeFiles/bench_section4_predictions.dir/bench_section4_predictions.cpp.o.d"
  "bench_section4_predictions"
  "bench_section4_predictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section4_predictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
