file(REMOVE_RECURSE
  "CMakeFiles/bench_vij_model.dir/bench_vij_model.cpp.o"
  "CMakeFiles/bench_vij_model.dir/bench_vij_model.cpp.o.d"
  "bench_vij_model"
  "bench_vij_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vij_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
