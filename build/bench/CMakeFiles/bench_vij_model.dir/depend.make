# Empty dependencies file for bench_vij_model.
# This may be replaced when dependencies are built.
