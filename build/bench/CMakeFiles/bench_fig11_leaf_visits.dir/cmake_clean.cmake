file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_leaf_visits.dir/bench_fig11_leaf_visits.cpp.o"
  "CMakeFiles/bench_fig11_leaf_visits.dir/bench_fig11_leaf_visits.cpp.o.d"
  "bench_fig11_leaf_visits"
  "bench_fig11_leaf_visits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_leaf_visits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
