# Empty dependencies file for bench_fig11_leaf_visits.
# This may be replaced when dependencies are built.
