file(REMOVE_RECURSE
  "CMakeFiles/bench_dhp_filter.dir/bench_dhp_filter.cpp.o"
  "CMakeFiles/bench_dhp_filter.dir/bench_dhp_filter.cpp.o.d"
  "bench_dhp_filter"
  "bench_dhp_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dhp_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
