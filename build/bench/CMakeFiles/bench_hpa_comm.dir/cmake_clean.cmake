file(REMOVE_RECURSE
  "CMakeFiles/bench_hpa_comm.dir/bench_hpa_comm.cpp.o"
  "CMakeFiles/bench_hpa_comm.dir/bench_hpa_comm.cpp.o.d"
  "bench_hpa_comm"
  "bench_hpa_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hpa_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
