# Empty dependencies file for bench_hpa_comm.
# This may be replaced when dependencies are built.
