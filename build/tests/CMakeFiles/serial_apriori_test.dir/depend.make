# Empty dependencies file for serial_apriori_test.
# This may be replaced when dependencies are built.
