file(REMOVE_RECURSE
  "CMakeFiles/serial_apriori_test.dir/core/serial_apriori_test.cc.o"
  "CMakeFiles/serial_apriori_test.dir/core/serial_apriori_test.cc.o.d"
  "serial_apriori_test"
  "serial_apriori_test.pdb"
  "serial_apriori_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serial_apriori_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
