file(REMOVE_RECURSE
  "CMakeFiles/miner_sweep_test.dir/core/miner_sweep_test.cc.o"
  "CMakeFiles/miner_sweep_test.dir/core/miner_sweep_test.cc.o.d"
  "miner_sweep_test"
  "miner_sweep_test.pdb"
  "miner_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
