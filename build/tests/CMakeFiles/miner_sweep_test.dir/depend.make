# Empty dependencies file for miner_sweep_test.
# This may be replaced when dependencies are built.
