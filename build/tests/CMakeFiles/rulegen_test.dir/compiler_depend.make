# Empty compiler generated dependencies file for rulegen_test.
# This may be replaced when dependencies are built.
