file(REMOVE_RECURSE
  "CMakeFiles/hash_tree_test.dir/hashtree/hash_tree_test.cc.o"
  "CMakeFiles/hash_tree_test.dir/hashtree/hash_tree_test.cc.o.d"
  "hash_tree_test"
  "hash_tree_test.pdb"
  "hash_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
