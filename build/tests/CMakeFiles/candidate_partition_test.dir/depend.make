# Empty dependencies file for candidate_partition_test.
# This may be replaced when dependencies are built.
