file(REMOVE_RECURSE
  "CMakeFiles/candidate_partition_test.dir/core/candidate_partition_test.cc.o"
  "CMakeFiles/candidate_partition_test.dir/core/candidate_partition_test.cc.o.d"
  "candidate_partition_test"
  "candidate_partition_test.pdb"
  "candidate_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
