# Empty dependencies file for hd_grid_test.
# This may be replaced when dependencies are built.
