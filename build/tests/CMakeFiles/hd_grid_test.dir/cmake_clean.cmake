file(REMOVE_RECURSE
  "CMakeFiles/hd_grid_test.dir/parallel/hd_grid_test.cc.o"
  "CMakeFiles/hd_grid_test.dir/parallel/hd_grid_test.cc.o.d"
  "hd_grid_test"
  "hd_grid_test.pdb"
  "hd_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hd_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
