# Empty dependencies file for maximal_test.
# This may be replaced when dependencies are built.
