file(REMOVE_RECURSE
  "CMakeFiles/maximal_test.dir/core/maximal_test.cc.o"
  "CMakeFiles/maximal_test.dir/core/maximal_test.cc.o.d"
  "maximal_test"
  "maximal_test.pdb"
  "maximal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maximal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
