# Empty compiler generated dependencies file for dhp_filter_test.
# This may be replaced when dependencies are built.
