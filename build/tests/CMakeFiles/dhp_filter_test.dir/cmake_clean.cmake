file(REMOVE_RECURSE
  "CMakeFiles/dhp_filter_test.dir/core/dhp_filter_test.cc.o"
  "CMakeFiles/dhp_filter_test.dir/core/dhp_filter_test.cc.o.d"
  "dhp_filter_test"
  "dhp_filter_test.pdb"
  "dhp_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhp_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
