file(REMOVE_RECURSE
  "CMakeFiles/page_buffer_test.dir/tdb/page_buffer_test.cc.o"
  "CMakeFiles/page_buffer_test.dir/tdb/page_buffer_test.cc.o.d"
  "page_buffer_test"
  "page_buffer_test.pdb"
  "page_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
