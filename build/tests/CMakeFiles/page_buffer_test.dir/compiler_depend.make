# Empty compiler generated dependencies file for page_buffer_test.
# This may be replaced when dependencies are built.
