# Empty dependencies file for db_stats_test.
# This may be replaced when dependencies are built.
