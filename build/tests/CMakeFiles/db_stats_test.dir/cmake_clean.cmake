file(REMOVE_RECURSE
  "CMakeFiles/db_stats_test.dir/tdb/db_stats_test.cc.o"
  "CMakeFiles/db_stats_test.dir/tdb/db_stats_test.cc.o.d"
  "db_stats_test"
  "db_stats_test.pdb"
  "db_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
