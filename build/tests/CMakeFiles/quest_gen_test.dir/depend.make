# Empty dependencies file for quest_gen_test.
# This may be replaced when dependencies are built.
