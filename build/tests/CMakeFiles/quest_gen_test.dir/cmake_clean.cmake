file(REMOVE_RECURSE
  "CMakeFiles/quest_gen_test.dir/datagen/quest_gen_test.cc.o"
  "CMakeFiles/quest_gen_test.dir/datagen/quest_gen_test.cc.o.d"
  "quest_gen_test"
  "quest_gen_test.pdb"
  "quest_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
