file(REMOVE_RECURSE
  "CMakeFiles/parallel_behavior_test.dir/parallel/parallel_behavior_test.cc.o"
  "CMakeFiles/parallel_behavior_test.dir/parallel/parallel_behavior_test.cc.o.d"
  "parallel_behavior_test"
  "parallel_behavior_test.pdb"
  "parallel_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
