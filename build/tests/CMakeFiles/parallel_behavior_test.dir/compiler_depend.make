# Empty compiler generated dependencies file for parallel_behavior_test.
# This may be replaced when dependencies are built.
