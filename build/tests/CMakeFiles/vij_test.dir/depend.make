# Empty dependencies file for vij_test.
# This may be replaced when dependencies are built.
