file(REMOVE_RECURSE
  "CMakeFiles/vij_test.dir/model/vij_test.cc.o"
  "CMakeFiles/vij_test.dir/model/vij_test.cc.o.d"
  "vij_test"
  "vij_test.pdb"
  "vij_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vij_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
