file(REMOVE_RECURSE
  "CMakeFiles/itemsets_io_test.dir/core/itemsets_io_test.cc.o"
  "CMakeFiles/itemsets_io_test.dir/core/itemsets_io_test.cc.o.d"
  "itemsets_io_test"
  "itemsets_io_test.pdb"
  "itemsets_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itemsets_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
