# Empty compiler generated dependencies file for itemsets_io_test.
# This may be replaced when dependencies are built.
