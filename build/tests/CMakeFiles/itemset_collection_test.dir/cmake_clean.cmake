file(REMOVE_RECURSE
  "CMakeFiles/itemset_collection_test.dir/core/itemset_collection_test.cc.o"
  "CMakeFiles/itemset_collection_test.dir/core/itemset_collection_test.cc.o.d"
  "itemset_collection_test"
  "itemset_collection_test.pdb"
  "itemset_collection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itemset_collection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
