# Empty dependencies file for itemset_collection_test.
# This may be replaced when dependencies are built.
