file(REMOVE_RECURSE
  "CMakeFiles/apriori_gen_test.dir/core/apriori_gen_test.cc.o"
  "CMakeFiles/apriori_gen_test.dir/core/apriori_gen_test.cc.o.d"
  "apriori_gen_test"
  "apriori_gen_test.pdb"
  "apriori_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apriori_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
