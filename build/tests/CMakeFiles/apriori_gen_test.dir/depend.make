# Empty dependencies file for apriori_gen_test.
# This may be replaced when dependencies are built.
