file(REMOVE_RECURSE
  "CMakeFiles/hpa_test.dir/parallel/hpa_test.cc.o"
  "CMakeFiles/hpa_test.dir/parallel/hpa_test.cc.o.d"
  "hpa_test"
  "hpa_test.pdb"
  "hpa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
