file(REMOVE_RECURSE
  "CMakeFiles/rulegen_parallel_test.dir/parallel/rulegen_parallel_test.cc.o"
  "CMakeFiles/rulegen_parallel_test.dir/parallel/rulegen_parallel_test.cc.o.d"
  "rulegen_parallel_test"
  "rulegen_parallel_test.pdb"
  "rulegen_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rulegen_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
