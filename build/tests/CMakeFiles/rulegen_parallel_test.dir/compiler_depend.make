# Empty compiler generated dependencies file for rulegen_parallel_test.
# This may be replaced when dependencies are built.
