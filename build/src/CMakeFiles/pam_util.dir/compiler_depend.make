# Empty compiler generated dependencies file for pam_util.
# This may be replaced when dependencies are built.
