file(REMOVE_RECURSE
  "CMakeFiles/pam_util.dir/pam/util/bin_packing.cc.o"
  "CMakeFiles/pam_util.dir/pam/util/bin_packing.cc.o.d"
  "CMakeFiles/pam_util.dir/pam/util/stats.cc.o"
  "CMakeFiles/pam_util.dir/pam/util/stats.cc.o.d"
  "CMakeFiles/pam_util.dir/pam/util/status.cc.o"
  "CMakeFiles/pam_util.dir/pam/util/status.cc.o.d"
  "libpam_util.a"
  "libpam_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
