file(REMOVE_RECURSE
  "libpam_util.a"
)
