
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pam/util/bin_packing.cc" "src/CMakeFiles/pam_util.dir/pam/util/bin_packing.cc.o" "gcc" "src/CMakeFiles/pam_util.dir/pam/util/bin_packing.cc.o.d"
  "/root/repo/src/pam/util/stats.cc" "src/CMakeFiles/pam_util.dir/pam/util/stats.cc.o" "gcc" "src/CMakeFiles/pam_util.dir/pam/util/stats.cc.o.d"
  "/root/repo/src/pam/util/status.cc" "src/CMakeFiles/pam_util.dir/pam/util/status.cc.o" "gcc" "src/CMakeFiles/pam_util.dir/pam/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
