# Empty compiler generated dependencies file for pam_parallel.
# This may be replaced when dependencies are built.
