file(REMOVE_RECURSE
  "CMakeFiles/pam_parallel.dir/pam/parallel/cd.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/cd.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/common.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/common.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/dd.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/dd.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/driver.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/driver.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/hd.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/hd.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/hpa.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/hpa.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/idd.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/idd.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/metrics.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/metrics.cc.o.d"
  "CMakeFiles/pam_parallel.dir/pam/parallel/rulegen_parallel.cc.o"
  "CMakeFiles/pam_parallel.dir/pam/parallel/rulegen_parallel.cc.o.d"
  "libpam_parallel.a"
  "libpam_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
