file(REMOVE_RECURSE
  "libpam_parallel.a"
)
