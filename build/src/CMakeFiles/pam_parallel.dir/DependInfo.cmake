
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pam/parallel/cd.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/cd.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/cd.cc.o.d"
  "/root/repo/src/pam/parallel/common.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/common.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/common.cc.o.d"
  "/root/repo/src/pam/parallel/dd.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/dd.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/dd.cc.o.d"
  "/root/repo/src/pam/parallel/driver.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/driver.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/driver.cc.o.d"
  "/root/repo/src/pam/parallel/hd.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/hd.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/hd.cc.o.d"
  "/root/repo/src/pam/parallel/hpa.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/hpa.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/hpa.cc.o.d"
  "/root/repo/src/pam/parallel/idd.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/idd.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/idd.cc.o.d"
  "/root/repo/src/pam/parallel/metrics.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/metrics.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/metrics.cc.o.d"
  "/root/repo/src/pam/parallel/rulegen_parallel.cc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/rulegen_parallel.cc.o" "gcc" "src/CMakeFiles/pam_parallel.dir/pam/parallel/rulegen_parallel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_tdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
