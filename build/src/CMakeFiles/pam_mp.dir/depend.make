# Empty dependencies file for pam_mp.
# This may be replaced when dependencies are built.
