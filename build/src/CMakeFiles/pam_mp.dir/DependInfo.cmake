
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pam/mp/comm.cc" "src/CMakeFiles/pam_mp.dir/pam/mp/comm.cc.o" "gcc" "src/CMakeFiles/pam_mp.dir/pam/mp/comm.cc.o.d"
  "/root/repo/src/pam/mp/runtime.cc" "src/CMakeFiles/pam_mp.dir/pam/mp/runtime.cc.o" "gcc" "src/CMakeFiles/pam_mp.dir/pam/mp/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
