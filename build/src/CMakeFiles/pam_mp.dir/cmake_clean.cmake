file(REMOVE_RECURSE
  "CMakeFiles/pam_mp.dir/pam/mp/comm.cc.o"
  "CMakeFiles/pam_mp.dir/pam/mp/comm.cc.o.d"
  "CMakeFiles/pam_mp.dir/pam/mp/runtime.cc.o"
  "CMakeFiles/pam_mp.dir/pam/mp/runtime.cc.o.d"
  "libpam_mp.a"
  "libpam_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
