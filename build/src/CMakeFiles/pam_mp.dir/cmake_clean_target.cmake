file(REMOVE_RECURSE
  "libpam_mp.a"
)
