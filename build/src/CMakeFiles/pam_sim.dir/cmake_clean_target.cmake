file(REMOVE_RECURSE
  "libpam_sim.a"
)
