# Empty dependencies file for pam_sim.
# This may be replaced when dependencies are built.
