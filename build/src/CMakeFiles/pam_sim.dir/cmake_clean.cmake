file(REMOVE_RECURSE
  "CMakeFiles/pam_sim.dir/pam/sim/network_sim.cc.o"
  "CMakeFiles/pam_sim.dir/pam/sim/network_sim.cc.o.d"
  "libpam_sim.a"
  "libpam_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
