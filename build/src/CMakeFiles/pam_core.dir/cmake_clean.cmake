file(REMOVE_RECURSE
  "CMakeFiles/pam_core.dir/pam/core/apriori_gen.cc.o"
  "CMakeFiles/pam_core.dir/pam/core/apriori_gen.cc.o.d"
  "CMakeFiles/pam_core.dir/pam/core/candidate_partition.cc.o"
  "CMakeFiles/pam_core.dir/pam/core/candidate_partition.cc.o.d"
  "CMakeFiles/pam_core.dir/pam/core/itemsets_io.cc.o"
  "CMakeFiles/pam_core.dir/pam/core/itemsets_io.cc.o.d"
  "CMakeFiles/pam_core.dir/pam/core/maximal.cc.o"
  "CMakeFiles/pam_core.dir/pam/core/maximal.cc.o.d"
  "CMakeFiles/pam_core.dir/pam/core/rulegen.cc.o"
  "CMakeFiles/pam_core.dir/pam/core/rulegen.cc.o.d"
  "CMakeFiles/pam_core.dir/pam/core/serial_apriori.cc.o"
  "CMakeFiles/pam_core.dir/pam/core/serial_apriori.cc.o.d"
  "libpam_core.a"
  "libpam_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
