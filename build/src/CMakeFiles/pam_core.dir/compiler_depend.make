# Empty compiler generated dependencies file for pam_core.
# This may be replaced when dependencies are built.
