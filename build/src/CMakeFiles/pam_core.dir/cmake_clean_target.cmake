file(REMOVE_RECURSE
  "libpam_core.a"
)
