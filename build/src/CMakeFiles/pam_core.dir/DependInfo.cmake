
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pam/core/apriori_gen.cc" "src/CMakeFiles/pam_core.dir/pam/core/apriori_gen.cc.o" "gcc" "src/CMakeFiles/pam_core.dir/pam/core/apriori_gen.cc.o.d"
  "/root/repo/src/pam/core/candidate_partition.cc" "src/CMakeFiles/pam_core.dir/pam/core/candidate_partition.cc.o" "gcc" "src/CMakeFiles/pam_core.dir/pam/core/candidate_partition.cc.o.d"
  "/root/repo/src/pam/core/itemsets_io.cc" "src/CMakeFiles/pam_core.dir/pam/core/itemsets_io.cc.o" "gcc" "src/CMakeFiles/pam_core.dir/pam/core/itemsets_io.cc.o.d"
  "/root/repo/src/pam/core/maximal.cc" "src/CMakeFiles/pam_core.dir/pam/core/maximal.cc.o" "gcc" "src/CMakeFiles/pam_core.dir/pam/core/maximal.cc.o.d"
  "/root/repo/src/pam/core/rulegen.cc" "src/CMakeFiles/pam_core.dir/pam/core/rulegen.cc.o" "gcc" "src/CMakeFiles/pam_core.dir/pam/core/rulegen.cc.o.d"
  "/root/repo/src/pam/core/serial_apriori.cc" "src/CMakeFiles/pam_core.dir/pam/core/serial_apriori.cc.o" "gcc" "src/CMakeFiles/pam_core.dir/pam/core/serial_apriori.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pam_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_tdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
