file(REMOVE_RECURSE
  "libpam_tdb.a"
)
