
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pam/tdb/database.cc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/database.cc.o" "gcc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/database.cc.o.d"
  "/root/repo/src/pam/tdb/db_stats.cc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/db_stats.cc.o" "gcc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/db_stats.cc.o.d"
  "/root/repo/src/pam/tdb/io.cc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/io.cc.o" "gcc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/io.cc.o.d"
  "/root/repo/src/pam/tdb/page_buffer.cc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/page_buffer.cc.o" "gcc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/page_buffer.cc.o.d"
  "/root/repo/src/pam/tdb/remap.cc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/remap.cc.o" "gcc" "src/CMakeFiles/pam_tdb.dir/pam/tdb/remap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
