file(REMOVE_RECURSE
  "CMakeFiles/pam_tdb.dir/pam/tdb/database.cc.o"
  "CMakeFiles/pam_tdb.dir/pam/tdb/database.cc.o.d"
  "CMakeFiles/pam_tdb.dir/pam/tdb/db_stats.cc.o"
  "CMakeFiles/pam_tdb.dir/pam/tdb/db_stats.cc.o.d"
  "CMakeFiles/pam_tdb.dir/pam/tdb/io.cc.o"
  "CMakeFiles/pam_tdb.dir/pam/tdb/io.cc.o.d"
  "CMakeFiles/pam_tdb.dir/pam/tdb/page_buffer.cc.o"
  "CMakeFiles/pam_tdb.dir/pam/tdb/page_buffer.cc.o.d"
  "CMakeFiles/pam_tdb.dir/pam/tdb/remap.cc.o"
  "CMakeFiles/pam_tdb.dir/pam/tdb/remap.cc.o.d"
  "libpam_tdb.a"
  "libpam_tdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_tdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
