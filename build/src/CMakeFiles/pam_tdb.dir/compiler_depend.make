# Empty compiler generated dependencies file for pam_tdb.
# This may be replaced when dependencies are built.
