# Empty dependencies file for pam_datagen.
# This may be replaced when dependencies are built.
