file(REMOVE_RECURSE
  "CMakeFiles/pam_datagen.dir/pam/datagen/quest_gen.cc.o"
  "CMakeFiles/pam_datagen.dir/pam/datagen/quest_gen.cc.o.d"
  "libpam_datagen.a"
  "libpam_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
