file(REMOVE_RECURSE
  "libpam_datagen.a"
)
