file(REMOVE_RECURSE
  "CMakeFiles/pam_hashtree.dir/pam/core/itemset_collection.cc.o"
  "CMakeFiles/pam_hashtree.dir/pam/core/itemset_collection.cc.o.d"
  "CMakeFiles/pam_hashtree.dir/pam/hashtree/hash_tree.cc.o"
  "CMakeFiles/pam_hashtree.dir/pam/hashtree/hash_tree.cc.o.d"
  "libpam_hashtree.a"
  "libpam_hashtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_hashtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
