
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pam/core/itemset_collection.cc" "src/CMakeFiles/pam_hashtree.dir/pam/core/itemset_collection.cc.o" "gcc" "src/CMakeFiles/pam_hashtree.dir/pam/core/itemset_collection.cc.o.d"
  "/root/repo/src/pam/hashtree/hash_tree.cc" "src/CMakeFiles/pam_hashtree.dir/pam/hashtree/hash_tree.cc.o" "gcc" "src/CMakeFiles/pam_hashtree.dir/pam/hashtree/hash_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pam_tdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
