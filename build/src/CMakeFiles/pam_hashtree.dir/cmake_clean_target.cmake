file(REMOVE_RECURSE
  "libpam_hashtree.a"
)
