# Empty compiler generated dependencies file for pam_hashtree.
# This may be replaced when dependencies are built.
