
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pam/model/analytic.cc" "src/CMakeFiles/pam_model.dir/pam/model/analytic.cc.o" "gcc" "src/CMakeFiles/pam_model.dir/pam/model/analytic.cc.o.d"
  "/root/repo/src/pam/model/cost_model.cc" "src/CMakeFiles/pam_model.dir/pam/model/cost_model.cc.o" "gcc" "src/CMakeFiles/pam_model.dir/pam/model/cost_model.cc.o.d"
  "/root/repo/src/pam/model/explain.cc" "src/CMakeFiles/pam_model.dir/pam/model/explain.cc.o" "gcc" "src/CMakeFiles/pam_model.dir/pam/model/explain.cc.o.d"
  "/root/repo/src/pam/model/machine.cc" "src/CMakeFiles/pam_model.dir/pam/model/machine.cc.o" "gcc" "src/CMakeFiles/pam_model.dir/pam/model/machine.cc.o.d"
  "/root/repo/src/pam/model/vij.cc" "src/CMakeFiles/pam_model.dir/pam/model/vij.cc.o" "gcc" "src/CMakeFiles/pam_model.dir/pam/model/vij.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pam_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_hashtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_tdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pam_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
