file(REMOVE_RECURSE
  "CMakeFiles/pam_model.dir/pam/model/analytic.cc.o"
  "CMakeFiles/pam_model.dir/pam/model/analytic.cc.o.d"
  "CMakeFiles/pam_model.dir/pam/model/cost_model.cc.o"
  "CMakeFiles/pam_model.dir/pam/model/cost_model.cc.o.d"
  "CMakeFiles/pam_model.dir/pam/model/explain.cc.o"
  "CMakeFiles/pam_model.dir/pam/model/explain.cc.o.d"
  "CMakeFiles/pam_model.dir/pam/model/machine.cc.o"
  "CMakeFiles/pam_model.dir/pam/model/machine.cc.o.d"
  "CMakeFiles/pam_model.dir/pam/model/vij.cc.o"
  "CMakeFiles/pam_model.dir/pam/model/vij.cc.o.d"
  "libpam_model.a"
  "libpam_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
