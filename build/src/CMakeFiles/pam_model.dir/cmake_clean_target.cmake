file(REMOVE_RECURSE
  "libpam_model.a"
)
