# Empty compiler generated dependencies file for pam_model.
# This may be replaced when dependencies are built.
