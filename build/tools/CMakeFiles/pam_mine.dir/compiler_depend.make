# Empty compiler generated dependencies file for pam_mine.
# This may be replaced when dependencies are built.
