file(REMOVE_RECURSE
  "CMakeFiles/pam_mine.dir/pam_mine.cpp.o"
  "CMakeFiles/pam_mine.dir/pam_mine.cpp.o.d"
  "pam_mine"
  "pam_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
