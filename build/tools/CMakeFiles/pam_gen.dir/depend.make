# Empty dependencies file for pam_gen.
# This may be replaced when dependencies are built.
