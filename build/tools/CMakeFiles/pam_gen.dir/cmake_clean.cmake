file(REMOVE_RECURSE
  "CMakeFiles/pam_gen.dir/pam_gen.cpp.o"
  "CMakeFiles/pam_gen.dir/pam_gen.cpp.o.d"
  "pam_gen"
  "pam_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pam_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
