// Robustness study: the paper's qualitative conclusions (HD <= CD < DD;
// IDD between CD and DD at moderate P) should not depend on the exact
// dataset family. This harness re-runs the scaleup comparison on the
// classic Agrawal-Srikant workload families (T5.I2, T10.I4, T15.I6,
// T20.I6) at a fixed processor count and reports the modeled T3E times.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Workload-family robustness of the algorithm ordering",
                "Section V conclusions across T5.I2 / T10.I4 / T15.I6 / "
                "T20.I6 data");

  const int p = 8;
  const std::size_t n = bench::ScaledN(6400);
  const CostModel model(MachineModel::CrayT3E());

  struct Family {
    const char* name;
    QuestConfig config;
  };
  const Family families[] = {
      {"T5.I2", QuestT5I2(n, 1997)},
      {"T10.I4", QuestT10I4(n, 1997)},
      {"T15.I6", QuestT15I6(n, 1997)},
      {"T20.I6", QuestT20I6(n, 1997)},
  };

  std::printf("P = %d, N = %zu, 2%% minimum support\n\n", p, n);
  std::printf("%-8s %10s | %10s %10s %10s %10s %10s\n", "family",
              "frequent", "CD", "DD", "DD+comm", "IDD", "HD");
  for (const Family& family : families) {
    QuestConfig quest = family.config;
    quest.num_patterns = 40;  // concentrated pool, as in the Fig-10 bench
    TransactionDatabase db = GenerateQuest(quest);
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.02;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
    cfg.hd_threshold_m = 2000;

    std::printf("%-8s", family.name);
    std::size_t frequent = 0;
    double times[5] = {0, 0, 0, 0, 0};
    const Algorithm algs[] = {Algorithm::kCD, Algorithm::kDD,
                              Algorithm::kDDComm, Algorithm::kIDD,
                              Algorithm::kHD};
    for (int a = 0; a < 5; ++a) {
      ParallelResult result = MineParallel(algs[a], db, p, cfg);
      times[a] = model.RunTime(algs[a], result.metrics);
      frequent = result.frequent.TotalCount();
    }
    std::printf(" %10zu |", frequent);
    for (double t : times) std::printf(" %10.3f", t);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: on every family, DD is worst, DD+comm second worst, "
      "IDD above CD,\nand HD within a few percent of CD (below it on the "
      "lighter families).\n");
  return 0;
}
