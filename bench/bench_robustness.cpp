// Robustness study: the paper's qualitative conclusions (HD <= CD < DD;
// IDD between CD and DD at moderate P) should not depend on the exact
// dataset family. This harness re-runs the scaleup comparison on the
// classic Agrawal-Srikant workload families (T5.I2, T10.I4, T15.I6,
// T20.I6) at a fixed processor count and reports the modeled T3E times.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Workload-family robustness of the algorithm ordering",
                "Section V conclusions across T5.I2 / T10.I4 / T15.I6 / "
                "T20.I6 data");

  const int p = 8;
  const std::size_t n = bench::ScaledN(6400);
  const CostModel model(MachineModel::CrayT3E());

  struct Family {
    const char* name;
    QuestConfig config;
  };
  const Family families[] = {
      {"T5.I2", QuestT5I2(n, 1997)},
      {"T10.I4", QuestT10I4(n, 1997)},
      {"T15.I6", QuestT15I6(n, 1997)},
      {"T20.I6", QuestT20I6(n, 1997)},
  };

  std::printf("P = %d, N = %zu, 2%% minimum support\n\n", p, n);
  std::printf("%-8s %10s | %10s %10s %10s %10s %10s\n", "family",
              "frequent", "CD", "DD", "DD+comm", "IDD", "HD");
  for (const Family& family : families) {
    QuestConfig quest = family.config;
    quest.num_patterns = 40;  // concentrated pool, as in the Fig-10 bench
    TransactionDatabase db = GenerateQuest(quest);
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.02;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
    cfg.hd_threshold_m = 2000;

    std::printf("%-8s", family.name);
    std::size_t frequent = 0;
    double times[5] = {0, 0, 0, 0, 0};
    const Algorithm algs[] = {Algorithm::kCD, Algorithm::kDD,
                              Algorithm::kDDComm, Algorithm::kIDD,
                              Algorithm::kHD};
    for (int a = 0; a < 5; ++a) {
      MiningReport result = bench::Mine(algs[a], db, p, cfg);
      times[a] = model.RunTime(algs[a], result.metrics);
      frequent = result.frequent.TotalCount();
    }
    std::printf(" %10zu |", frequent);
    for (double t : times) std::printf(" %10.3f", t);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: on every family, DD is worst, DD+comm second worst, "
      "IDD above CD,\nand HD within a few percent of CD (below it on the "
      "lighter families).\n");

  // --- Fault-recovery overhead -----------------------------------------
  // The same conclusions must survive a faulty transport: under the
  // deterministic fault schedule (5% of delivery attempts corrupted,
  // dropped, duplicated, reordered, ... with a retransmit budget) every
  // formulation must still produce identical frequent itemsets, and the
  // recovery traffic should stay a modest multiple of the fault count.
  bench::Banner("Fault-recovery overhead",
                "mixed transport faults, 5% per kind, retransmit budget 8");
  {
    TransactionDatabase db = GenerateQuest(QuestT10I4(bench::ScaledN(1600),
                                                      1997));
    ParallelConfig clean_cfg;
    clean_cfg.apriori.minsup_fraction = 0.02;
    clean_cfg.apriori.tree = bench::BenchTreeConfig();
    ParallelConfig faulty_cfg = clean_cfg;
    faulty_cfg.fault = FaultConfig::Mixed(0.3, /*seed=*/1997,
                                          /*max_retries=*/8);
    faulty_cfg.fault.recv_timeout_ms = 10000;

    std::printf("%-8s %10s %10s %10s %10s %8s\n", "alg", "messages",
                "injected", "retransmit", "detected", "exact");
    const Algorithm algs[] = {Algorithm::kCD, Algorithm::kDD,
                              Algorithm::kIDD, Algorithm::kHD};
    for (Algorithm alg : algs) {
      MiningReport clean = bench::Mine(alg, db, p, clean_cfg);
      MiningReport faulty = bench::Mine(alg, db, p, faulty_cfg);
      std::uint64_t messages = 0;
      for (const auto& pass : faulty.metrics.per_pass) {
        for (const auto& m : pass) messages += m.data_messages_sent;
      }
      const bool exact =
          bench::SameItemsets(clean.frequent, faulty.frequent);
      std::printf("%-8s %10llu %10llu %10llu %10llu %8s\n",
                  AlgorithmName(alg).c_str(),
                  static_cast<unsigned long long>(messages),
                  static_cast<unsigned long long>(
                      faulty.metrics.TotalFaultsInjected()),
                  static_cast<unsigned long long>(
                      faulty.metrics.TotalCommRetries()),
                  static_cast<unsigned long long>(
                      faulty.metrics.TotalFaultsDetected()),
                  exact ? "yes" : "NO");
      std::fflush(stdout);
    }
    std::printf(
        "\nEvery row must read `exact = yes`: the envelope framing repairs "
        "all\ninjected faults transparently or the run would have aborted "
        "with CommError.\n");
  }
  return 0;
}
