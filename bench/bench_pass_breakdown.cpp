// Reproduces the overhead percentages the paper quotes alongside
// Figure 13: on CD, hash tree construction and the global reduction grow
// from 3.1% / 1.6% of the runtime at P=4 to 24.8% / 31.0% at P=64; on
// IDD, load imbalance grows from 6.3% to 49.6% and data movement from
// 1.0% to 6.4%. This harness prints the same decomposition from the cost
// model and the measured per-rank counters.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Where the time goes: per-component share vs P",
                "Section V's Figure-13 discussion (CD: build/reduction "
                "bottleneck; IDD: load imbalance)");

  const std::size_t n = bench::ScaledN(16000);
  TransactionDatabase db = GenerateQuest(bench::ScaleupWorkload(n));
  const CostModel model(MachineModel::CrayT3E());

  std::printf("N = %zu, 2%% minimum support, pass 3 only\n\n", db.size());
  std::printf("%6s | %28s | %28s\n", "",
              "CD (% of pass time)", "IDD (% of pass time)");
  std::printf("%6s | %8s %9s %9s | %8s %9s %9s\n", "P", "build", "reduce",
              "subset", "moveData", "imbal", "subset");

  for (int p : {4, 8, 16, 32, 64}) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.02;
    cfg.apriori.max_k = 3;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree

    double cd_parts[3] = {0, 0, 0};
    double idd_parts[3] = {0, 0, 0};
    for (int a = 0; a < 2; ++a) {
      const Algorithm alg = a == 0 ? Algorithm::kCD : Algorithm::kIDD;
      MiningReport result = bench::Mine(alg, db, p, cfg);
      for (int pass = 0; pass < result.metrics.num_passes(); ++pass) {
        const auto& row =
            result.metrics.per_pass[static_cast<std::size_t>(pass)];
        if (row[0].k != 3) continue;
        const PassTimeBreakdown b = model.PassTime(alg, row);
        const double total = b.Total();
        if (a == 0) {
          cd_parts[0] = 100.0 * b.tree_build / total;
          cd_parts[1] = 100.0 * b.reduction / total;
          cd_parts[2] = 100.0 * b.subset / total;
        } else {
          idd_parts[0] = 100.0 * b.data_comm / total;
          // Imbalance share: the slack between the slowest rank's subset
          // time (which paces the pass) and the average rank's.
          double sum = 0.0;
          double max = 0.0;
          for (const PassMetrics& m : row) {
            const double s = model.SubsetSeconds(m.subset);
            sum += s;
            max = std::max(max, s);
          }
          const double avg = sum / static_cast<double>(row.size());
          idd_parts[1] = 100.0 * (max - avg) / total;
          idd_parts[2] = 100.0 * b.subset / total;
        }
      }
    }
    std::printf("%6d | %7.1f%% %8.1f%% %8.1f%% | %7.1f%% %8.1f%% %8.1f%%\n",
                p, cd_parts[0], cd_parts[1], cd_parts[2], idd_parts[0],
                idd_parts[1], idd_parts[2]);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: CD's build+reduce share grows with P (its serial "
      "bottleneck);\nIDD's imbalance share grows with P and dominates its "
      "data-movement share.\n");
  return 0;
}
