// Derives the cost model's DD contention multiplier from first
// principles: simulates DD's unstructured all-to-all page scatter and
// IDD's ring pipeline on the T3E-like 3D torus (one transfer per node at
// a time, dimension-order routing) and reports the makespan relative to
// the one-port lower bound. The paper's Section III-B argues exactly
// this: "on such machines, this communication pattern will take
// significantly more than O(N) time because of contention within the
// network", while the ring-based shift of Figure 6 "does not suffer from
// the contention problems".

#include <cstdio>

#include "pam/sim/network_sim.h"

int main() {
  using namespace pam;
  std::printf("=== Network contention: DD all-to-all vs IDD ring ===\n");
  std::printf("Reproduces: Section III-B/III-C network argument; "
              "calibrates MachineModel::dd_contention\n\n");

  const double bw = 303.0 * 1024 * 1024;  // paper's measured T3E B/W
  const double latency = 16e-6;
  const std::uint64_t per_peer_bytes = 16 * 1024;  // one page per peer

  std::printf("%6s %12s | %14s %14s | %14s %14s\n", "P", "topology",
              "all-to-all", "ring shift", "a2a factor", "ring factor");
  for (int p : {8, 16, 27, 64, 125}) {
    for (Topology topo :
         {Topology::kTorus3D, Topology::kFullyConnectedOnePort}) {
      NetworkSimulator sim(p, topo, bw, latency);
      const auto a2a = NetworkSimulator::AllToAll(p, per_peer_bytes);
      const auto ring =
          NetworkSimulator::RingShift(p, per_peer_bytes, p - 1);
      const double a2a_time = sim.Run(a2a).makespan;
      const double ring_time = sim.Run(ring).makespan;
      std::printf("%6d %12s | %12.2fms %12.2fms | %14.2f %14.2f\n", p,
                  topo == Topology::kTorus3D ? "3D torus" : "1-port full",
                  a2a_time * 1e3, ring_time * 1e3,
                  ContentionFactor(sim, a2a, bw),
                  ContentionFactor(sim, ring, bw));
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: the ring factor stays ~1 everywhere; the torus "
      "all-to-all factor grows\nwith P (the cost model's dd_contention "
      "default of 4 corresponds to mid-size machines).\n");
  return 0;
}
