// Old-vs-new subset-counting kernel comparison on a T10.I4.D100K-style
// Quest workload (10-item transactions, 4-item patterns, 100K transactions
// at scale 1.0). Runs the classic recursive pointer-chasing traversal and
// the flat structure-of-arrays kernel over identical trees, verifies the
// counts and SubsetStats are bit-identical, times the specialized
// triangular pass-2 counter against both, sweeps the intra-rank counting
// team over {1, 2, 4, 8} threads (counts re-verified at every size), and
// writes the measurements to BENCH_kernel.json — including the host core
// count, without which the thread-sweep numbers cannot be interpreted.
// Exits non-zero on any count/stats mismatch.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "pam/core/apriori_gen.h"
#include "pam/core/count_team.h"
#include "pam/hashtree/counting_pool.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/hashtree/pair_counter.h"
#include "pam/util/timer.h"

namespace {

using namespace pam;

// The classic synthetic benchmark dataset of the association-rule
// literature: |T| = 10, |I| = 4, D = 100K, 1000 items.
QuestConfig KernelWorkload(std::size_t n) {
  QuestConfig q;
  q.num_transactions = n;
  q.num_items = 1000;
  q.avg_transaction_len = 10;
  q.avg_pattern_len = 4;
  q.num_patterns = 400;
  q.seed = 1997;
  return q;
}

struct KernelRun {
  double seconds = 0.0;
  std::vector<Count> counts;
  SubsetStats stats;
};

// Counts `candidates` over the whole database `reps` times with the given
// kernel and keeps the fastest repetition (counts/stats are identical
// across repetitions by construction).
KernelRun RunKernel(const TransactionDatabase& db,
                    const ItemsetCollection& candidates,
                    HashTreeKernel kernel, int reps) {
  HashTreeConfig shape =
      HashTreeConfig::TunedFor(candidates.size(), candidates.k(), 8);
  shape.kernel = kernel;
  HashTree tree(candidates, shape);

  KernelRun best;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<Count> counts(candidates.size(), 0);
    SubsetStats stats;
    WallTimer timer;
    for (std::size_t t = 0; t < db.size(); ++t) {
      tree.Subset(db.Transaction(t), std::span<Count>(counts), &stats);
    }
    const double s = timer.Seconds();
    if (rep == 0 || s < best.seconds) {
      best.seconds = s;
      best.counts = std::move(counts);
      best.stats = stats;
    }
  }
  return best;
}

bool SameStats(const SubsetStats& a, const SubsetStats& b) {
  return a.transactions == b.transactions &&
         a.root_items_considered == b.root_items_considered &&
         a.root_items_skipped == b.root_items_skipped &&
         a.traversal_steps == b.traversal_steps &&
         a.distinct_leaf_visits == b.distinct_leaf_visits &&
         a.leaf_candidates_checked == b.leaf_candidates_checked;
}

struct PassReport {
  int k = 0;
  std::size_t num_candidates = 0;
  double classic_seconds = 0.0;
  double flat_seconds = 0.0;
  double triangle_seconds = -1.0;  // < 0 when the pass has no triangle path
  bool counts_identical = false;
  bool stats_identical = false;
  /// Counting-team sweep over the flat kernel: (threads, best seconds).
  std::vector<std::pair<int, double>> team;
  /// Same sweep for the pass-2 triangle team (k == 2 only).
  std::vector<std::pair<int, double>> triangle_team;
};

constexpr int kTeamSizes[] = {1, 2, 4, 8};

// Times the intra-rank counting team at one size over the flat tree; the
// merged counts and stats must match the single-threaded flat kernel.
double RunTeamKernel(const TransactionDatabase& db,
                     const ItemsetCollection& candidates, int threads,
                     int reps, const KernelRun& expect, bool* ok) {
  HashTreeConfig shape =
      HashTreeConfig::TunedFor(candidates.size(), candidates.k(), 8);
  HashTree tree(candidates, shape);
  CountingPool pool(threads);
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<Count> counts(candidates.size(), 0);
    SubsetStats stats;
    WallTimer timer;
    TeamCounter team(&pool, &tree, std::span<Count>(counts), &stats);
    team.CountSlice(db, {0, db.size()});
    team.Finish();
    const double s = timer.Seconds();
    if (rep == 0 || s < best) best = s;
    if (rep == 0) {
      *ok = *ok && counts == expect.counts && SameStats(stats, expect.stats);
    }
  }
  return best;
}

// Times the pass-2 triangle team at one size; counts must match the flat
// kernel's.
double RunTriangleTeam(const TransactionDatabase& db,
                       const ItemsetCollection& f_prev,
                       const ItemsetCollection& candidates, int threads,
                       int reps, const std::vector<Count>& expect, bool* ok) {
  CountingPool pool(threads);
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    TrianglePairCounter tri(f_prev);
    std::vector<Count> counts(candidates.size(), 0);
    WallTimer timer;
    TriangleTeam team(&pool, &tri, nullptr);
    team.CountSlice(db, {0, db.size()});
    team.Finish();
    tri.Extract(candidates, std::span<Count>(counts));
    const double s = timer.Seconds();
    if (rep == 0 || s < best) best = s;
    if (rep == 0) *ok = *ok && counts == expect;
  }
  return best;
}

// Compares both tree kernels (and, at k == 2, the triangular counter) on
// one candidate set. Returns the frequent survivors for the next pass.
PassReport ComparePass(const TransactionDatabase& db,
                       const ItemsetCollection& f_prev,
                       const ItemsetCollection& candidates, int reps,
                       Count minsup, ItemsetCollection* frequent_out) {
  PassReport r;
  r.k = candidates.k();
  r.num_candidates = candidates.size();

  KernelRun classic =
      RunKernel(db, candidates, HashTreeKernel::kClassic, reps);
  KernelRun flat = RunKernel(db, candidates, HashTreeKernel::kFlat, reps);
  r.classic_seconds = classic.seconds;
  r.flat_seconds = flat.seconds;
  r.counts_identical = classic.counts == flat.counts;
  r.stats_identical = SameStats(classic.stats, flat.stats);

  if (r.k == 2 && TrianglePairCounter::Fits(f_prev.size(), 0)) {
    double tri_best = 0.0;
    std::vector<Count> tri_counts;
    for (int rep = 0; rep < reps; ++rep) {
      TrianglePairCounter tri(f_prev);
      std::vector<Count> counts(candidates.size(), 0);
      WallTimer timer;
      for (std::size_t t = 0; t < db.size(); ++t) {
        tri.AddTransaction(db.Transaction(t), nullptr);
      }
      tri.Extract(candidates, std::span<Count>(counts));
      const double s = timer.Seconds();
      if (rep == 0 || s < tri_best) {
        tri_best = s;
        tri_counts = std::move(counts);
      }
    }
    r.triangle_seconds = tri_best;
    r.counts_identical = r.counts_identical && tri_counts == flat.counts;
    for (const int threads : kTeamSizes) {
      bool ok = true;
      const double s = RunTriangleTeam(db, f_prev, candidates, threads,
                                       reps, flat.counts, &ok);
      r.triangle_team.emplace_back(threads, s);
      r.counts_identical = r.counts_identical && ok;
    }
  }

  for (const int threads : kTeamSizes) {
    bool ok = true;
    const double s = RunTeamKernel(db, candidates, threads, reps, flat, &ok);
    r.team.emplace_back(threads, s);
    r.counts_identical = r.counts_identical && ok;
    r.stats_identical = r.stats_identical && ok;
  }

  if (frequent_out != nullptr) {
    ItemsetCollection survivors = candidates;
    survivors.counts() = flat.counts;
    survivors.PruneBelow(minsup);
    *frequent_out = std::move(survivors);
  }
  return r;
}

void PrintPass(const PassReport& r, std::size_t n) {
  const double classic_tps = static_cast<double>(n) / r.classic_seconds;
  const double flat_tps = static_cast<double>(n) / r.flat_seconds;
  std::printf("pass %d (%zu candidates):\n", r.k, r.num_candidates);
  std::printf("  classic  %8.3f s  (%10.0f tx/s)\n", r.classic_seconds,
              classic_tps);
  std::printf("  flat     %8.3f s  (%10.0f tx/s)  speedup %.2fx\n",
              r.flat_seconds, flat_tps,
              r.classic_seconds / r.flat_seconds);
  if (r.triangle_seconds >= 0.0) {
    std::printf("  triangle %8.3f s  (%10.0f tx/s)  speedup %.2fx\n",
                r.triangle_seconds,
                static_cast<double>(n) / r.triangle_seconds,
                r.classic_seconds / r.triangle_seconds);
  }
  for (const auto& [threads, seconds] : r.team) {
    std::printf("  team x%-2d %8.3f s  (%10.0f tx/s)  vs 1-thread %.2fx\n",
                threads, seconds, static_cast<double>(n) / seconds,
                r.team.front().second / seconds);
  }
  for (const auto& [threads, seconds] : r.triangle_team) {
    std::printf("  tri  x%-2d %8.3f s  (%10.0f tx/s)  vs 1-thread %.2fx\n",
                threads, seconds, static_cast<double>(n) / seconds,
                r.triangle_team.front().second / seconds);
  }
  std::printf("  counts identical: %s, stats identical: %s\n",
              r.counts_identical ? "yes" : "NO",
              r.stats_identical ? "yes" : "NO");
}

void AppendSweepJson(std::string* out, const char* name,
                     const std::vector<std::pair<int, double>>& sweep) {
  *out += std::string(",\n     \"") + name + "\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"threads\": %d, \"seconds\": %.6f, "
                  "\"speedup_vs_1\": %.4f}",
                  i == 0 ? "" : ", ", sweep[i].first, sweep[i].second,
                  sweep.front().second / sweep[i].second);
    *out += buf;
  }
  *out += "]";
}

void AppendPassJson(std::string* out, const PassReport& r, std::size_t n) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"k\": %d, \"num_candidates\": %zu,\n"
      "     \"classic_seconds\": %.6f, \"flat_seconds\": %.6f,\n"
      "     \"classic_tx_per_sec\": %.1f, \"flat_tx_per_sec\": %.1f,\n"
      "     \"flat_speedup\": %.4f, \"triangle_seconds\": %.6f,\n"
      "     \"counts_identical\": %s, \"stats_identical\": %s",
      r.k, r.num_candidates, r.classic_seconds, r.flat_seconds,
      static_cast<double>(n) / r.classic_seconds,
      static_cast<double>(n) / r.flat_seconds,
      r.classic_seconds / r.flat_seconds, r.triangle_seconds,
      r.counts_identical ? "true" : "false",
      r.stats_identical ? "true" : "false");
  *out += buf;
  AppendSweepJson(out, "team", r.team);
  if (!r.triangle_team.empty()) {
    AppendSweepJson(out, "triangle_team", r.triangle_team);
  }
  *out += "}";
}

}  // namespace

int main() {
  bench::Banner(
      "Subset-counting kernel: classic vs flat vs pass-2 triangle",
      "engineering baseline for the Section IV counting terms "
      "(T10.I4.D100K workload)");

  const std::size_t n = bench::ScaledN(100000);
  const TransactionDatabase db = GenerateQuest(KernelWorkload(n));
  const Count minsup =
      static_cast<Count>(static_cast<double>(n) * 0.005) + 1;
  const int reps = 3;

  std::vector<Count> item_counts = CountItems(db, {0, db.size()});
  ItemsetCollection f1 = MakeF1(item_counts, minsup);
  std::printf("N = %zu, minsup = %" PRIu64 ", |F1| = %zu, host cores = %u\n\n",
              n, static_cast<std::uint64_t>(minsup), f1.size(),
              std::thread::hardware_concurrency());

  std::vector<PassReport> reports;
  ItemsetCollection prev = std::move(f1);
  for (int k = 2; k <= 3; ++k) {
    ItemsetCollection candidates = AprioriGen(prev);
    if (candidates.size() < 2) break;
    ItemsetCollection next(k);
    reports.push_back(ComparePass(db, prev, candidates, reps, minsup, &next));
    PrintPass(reports.back(), n);
    std::printf("\n");
    prev = std::move(next);
    if (prev.size() < 2) break;
  }

  bool ok = !reports.empty();
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::string json = "{\n";
  json += "  \"workload\": \"T10.I4.D" + std::to_string(n) + "\",\n";
  json += "  \"transactions\": " + std::to_string(n) + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"host_cpu_cores\": " + std::to_string(host_cores) + ",\n";
  json += "  \"passes\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    AppendPassJson(&json, reports[i], n);
    json += i + 1 < reports.size() ? ",\n" : "\n";
    ok = ok && reports[i].counts_identical && reports[i].stats_identical;
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_kernel.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_kernel.json\n");
  }

  if (!ok) {
    std::printf("FAIL: kernel outputs differ\n");
    return 1;
  }
  return 0;
}
