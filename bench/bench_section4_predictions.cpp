// Section IV validation: the paper's closed-form Equations 3-7 (the
// analytic predictor over N, M, P, C, L) against the measured-counter
// cost model on the same workload. Agreement here means the repository's
// figures follow from the paper's own analysis, not from tuning.

#include <cstdio>

#include "bench_util.h"
#include "pam/model/analytic.h"

int main() {
  using namespace pam;
  bench::Banner("Analytic Eq. 3-7 predictions vs measured-counter model",
                "Section IV (performance analysis)");

  const std::size_t n = bench::ScaledN(12000);
  TransactionDatabase db = GenerateQuest(bench::ScaleupWorkload(n));
  const MachineModel machine = MachineModel::CrayT3E();
  const CostModel model(machine);

  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.02;
  cfg.apriori.max_k = 3;
  cfg.apriori.tree = bench::BenchTreeConfig();
  cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
  cfg.hd_forced_rows = 4;

  std::printf("N = %zu, pass 3, P sweep; seconds per pass\n\n", db.size());
  std::printf("%6s %-8s %12s %12s %10s\n", "P", "algo", "analytic",
              "measured", "ratio");
  for (int p : {4, 16, 64}) {
    // Run once to learn the workload constants the analysis assumes.
    MiningReport probe = bench::Mine(Algorithm::kCD, db, p, cfg);
    AnalyticWorkload w;
    w.num_transactions = static_cast<double>(db.size());
    w.avg_transaction_items = db.AverageLength();
    w.pass_k = 3;
    w.num_processors = p;
    w.hd_grid_rows = 4;
    for (int pass = 0; pass < probe.metrics.num_passes(); ++pass) {
      const auto& row = probe.metrics.per_pass[static_cast<std::size_t>(pass)];
      if (row[0].k == 3) {
        w.num_candidates = static_cast<double>(row[0].num_candidates_global);
      }
    }
    w.avg_leaf_candidates = cfg.apriori.tree.leaf_capacity;

    for (Algorithm alg : {Algorithm::kCD, Algorithm::kDD, Algorithm::kIDD,
                          Algorithm::kHD}) {
      MiningReport result = bench::Mine(alg, db, p, cfg);
      double measured = 0.0;
      for (int pass = 0; pass < result.metrics.num_passes(); ++pass) {
        const auto& row =
            result.metrics.per_pass[static_cast<std::size_t>(pass)];
        if (row[0].k == 3) measured = model.PassTime(alg, row).Total();
      }
      const double analytic =
          PredictParallelPassSeconds(alg, w, machine);
      std::printf("%6d %-8s %12.4f %12.4f %10.2f\n", p,
                  AlgorithmName(alg).c_str(), analytic, measured,
                  measured > 0 ? analytic / measured : 0.0);
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: analytic and measured agree within a small constant "
      "factor and rank the\nalgorithms identically at every P.\n");
  return 0;
}
