// Table II reproduction: the processor grid HD chooses at every pass, as
// the candidate count rises and falls, with P processors and candidate
// threshold m. The paper runs P = 64, m = 50K on T15.I6 data at 0.1%
// support; this harness runs a proportionally scaled workload and prints
// the same rows: pass, grid configuration, candidate count. The expected
// pattern is the paper's: the grid widens (more rows G) in the heavy
// middle passes and collapses to 1 x P (pure CD) in the tail.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("HD dynamic processor grid per pass",
                "Table II (64 procs, m = 50K, configs 8x8 -> 64x1 -> ... -> "
                "1x64)");

  const int p = 16;
  TransactionDatabase db =
      GenerateQuest(bench::PaperWorkload(bench::ScaledN(16000)));

  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.004;
  // Scale the paper's m = 50K to this workload's candidate magnitudes.
  cfg.hd_threshold_m = 1500;

  std::printf("P = %d, m = %zu, N = %zu, minsup = %.2f%%\n\n", p,
              cfg.hd_threshold_m, db.size(),
              cfg.apriori.minsup_fraction * 100.0);

  MiningReport result = bench::Mine(Algorithm::kHD, db, p, cfg);

  std::printf("%6s %16s %14s %12s %14s\n", "pass", "configuration",
              "candidates", "frequent", "equivalent");
  for (const auto& pass : result.metrics.per_pass) {
    const PassMetrics& m = pass[0];
    const char* equivalent = "hybrid";
    if (m.grid_rows == 1) equivalent = "CD";
    if (m.grid_cols == 1) equivalent = "IDD";
    if (m.k == 1) equivalent = "count+reduce";
    std::printf("%6d %10dx%-5d %14zu %12zu %14s\n", m.k, m.grid_rows,
                m.grid_cols, m.num_candidates_global, m.num_frequent_global,
                equivalent);
  }
  std::printf("\nTotal frequent itemsets: %zu\n",
              result.frequent.TotalCount());
  return 0;
}
