// Section III-E reproduction: communication volume of HPA vs DD/IDD per
// pass. The paper argues that HPA ships (|t| choose k) potential
// candidates per transaction, so for k > 2 its volume can far exceed DD's
// and IDD's (which ship each transaction once per pass, i.e. O(|t|)
// items), while for k = 2 HPA can come out cheaper. This harness measures
// the exact bytes each formulation moved in every pass.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Per-pass communication volume: HPA vs DD vs IDD",
                "Section III-E (HPA's O(|t| choose k) subset traffic vs "
                "IDD's O(|t|))");

  const int p = 8;
  TransactionDatabase db =
      GenerateQuest(bench::PaperWorkload(bench::ScaledN(4000)));
  ParallelConfig cfg;
  cfg.apriori.minsup_fraction = 0.0075;
  cfg.apriori.tree = bench::BenchTreeConfig();

  MiningReport dd = bench::Mine(Algorithm::kDD, db, p, cfg);
  MiningReport idd = bench::Mine(Algorithm::kIDD, db, p, cfg);
  MiningReport hpa = bench::Mine(Algorithm::kHPA, db, p, cfg);

  std::printf("P = %d, N = %zu, avg transaction length %.1f\n\n", p,
              db.size(), db.AverageLength());
  std::printf("%6s %12s %14s %14s %14s %12s\n", "pass", "candidates",
              "DD MB", "IDD MB", "HPA MB", "HPA/IDD");
  const int passes = std::min(
      {dd.metrics.num_passes(), idd.metrics.num_passes(),
       hpa.metrics.num_passes()});
  for (int pass = 1; pass < passes; ++pass) {
    const double dd_mb =
        static_cast<double>(dd.metrics.TotalDataBytes(pass)) / 1048576.0;
    const double idd_mb =
        static_cast<double>(idd.metrics.TotalDataBytes(pass)) / 1048576.0;
    const double hpa_mb =
        static_cast<double>(hpa.metrics.TotalDataBytes(pass)) / 1048576.0;
    std::printf(
        "%6d %12zu %14.2f %14.2f %14.2f %12.2f\n",
        dd.metrics.per_pass[static_cast<std::size_t>(pass)][0].k,
        dd.metrics.per_pass[static_cast<std::size_t>(pass)][0]
            .num_candidates_global,
        dd_mb, idd_mb, hpa_mb, idd_mb > 0 ? hpa_mb / idd_mb : 0.0);
  }
  std::printf(
      "\nShape check: HPA's volume peaks in the middle passes and exceeds "
      "IDD's for k >= 3;\nDD and IDD ship identical, k-independent "
      "volumes.\n");
  return 0;
}
