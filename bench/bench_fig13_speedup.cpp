// Figure 13 reproduction: speedup vs processor count with the TOTAL
// problem fixed (N = 1.3M transactions, M = 0.7M candidates in the paper;
// P from 4 to 64). The paper measures the pass computing size-3 frequent
// itemsets only, since it dominates (> 55%) the runtime; this harness does
// the same (max_k = 3, pass-3 modeled time) at reduced scale.
//
// Expected shape (paper): HD speeds up best; CD flattens because hash tree
// construction and the global reduction are serial bottlenecks (3.1% of
// runtime at P=4 growing to 24.8% + 31.0% at P=64); IDD flattens from load
// imbalance. HD grids are pinned to 8 rows (8x2, 8x4, 8x8) as in the
// paper.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "pam/core/serial_apriori.h"

int main() {
  using namespace pam;
  bench::Banner("Speedup vs processors, fixed N and M (pass 3 only)",
                "Figure 13 (N = 1.3M, M = 0.7M, P = 4..64, HD grids 8x2 / "
                "8x4 / 8x8)");

  const std::size_t n = bench::ScaledN(20000);
  TransactionDatabase db = GenerateQuest(bench::ScaleupWorkload(n));

  ParallelConfig base;
  base.apriori.minsup_fraction = 0.02;
  base.apriori.max_k = 3;
  base.apriori.tree = bench::BenchTreeConfig();
  base.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
  // PAM_THREADS_PER_RANK=T adds the intra-rank counting team (wall-clock
  // only; the T3E cost model charges the single-threaded work terms).
  if (const char* env = std::getenv("PAM_THREADS_PER_RANK")) {
    const int t = std::atoi(env);
    if (t > 0) base.apriori.threads_per_rank = t;
  }

  const CostModel model(MachineModel::CrayT3E());

  // Serial baseline (pass 3 modeled time).
  AprioriConfig serial_cfg = base.apriori;
  SerialResult serial = MineSerial(db, serial_cfg);
  double serial_pass3 = 0.0;
  std::size_t m3 = 0;
  for (const SerialPassInfo& pass : serial.passes) {
    if (pass.k == 3) {
      serial_pass3 = model.SerialPassTime(pass, db.WireBytes({0, db.size()}));
      m3 = pass.num_candidates;
    }
  }
  std::printf("N = %zu, |C_3| = %zu, serial pass-3 model time = %.3fs\n\n",
              db.size(), m3, serial_pass3);
  if (serial_pass3 <= 0.0) {
    std::printf("workload produced no pass 3; raise PAM_BENCH_SCALE\n");
    return 1;
  }

  std::printf("%6s %10s %10s %10s %16s\n", "P", "CD", "IDD", "HD",
              "(HD grid)");
  for (int p : {4, 8, 16, 32, 64}) {
    ParallelConfig cfg = base;
    cfg.hd_forced_rows = p <= 8 ? p / 2 : 8;  // 2x2, 4x2, 8x2, 8x4, 8x8

    double t[3] = {0, 0, 0};
    int grid_rows = 0;
    int grid_cols = 0;
    const Algorithm algs[] = {Algorithm::kCD, Algorithm::kIDD,
                              Algorithm::kHD};
    for (int a = 0; a < 3; ++a) {
      MiningReport result = bench::Mine(algs[a], db, p, cfg);
      for (int pass = 0; pass < result.metrics.num_passes(); ++pass) {
        const auto& row =
            result.metrics.per_pass[static_cast<std::size_t>(pass)];
        if (row[0].k == 3) {
          t[a] = model.PassTime(algs[a], row).Total();
          if (algs[a] == Algorithm::kHD) {
            grid_rows = row[0].grid_rows;
            grid_cols = row[0].grid_cols;
          }
        }
      }
    }
    std::printf("%6d %10.2f %10.2f %10.2f %12dx%-3d\n", p,
                serial_pass3 / t[0], serial_pass3 / t[1],
                serial_pass3 / t[2], grid_rows, grid_cols);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: HD's speedup keeps climbing; CD and IDD flatten at "
      "large P.\n");
  return 0;
}
