// Figure 12 reproduction: response time on a 16-processor IBM SP2 with a
// DISK-resident database as the candidate count grows (the paper lowers
// minsup from 0.1% to 0.025%, reaching 11M candidates). When the candidate
// hash tree no longer fits in one node's memory, CD must partition the
// tree and re-scan the database once per partition; IDD and HD keep using
// the aggregate memory of all nodes and scan once.
//
// Expected shape (paper): all three grow with M, but CD grows faster and
// is overtaken by IDD and HD once the tree overflows (the paper reports
// 8% / 11% / 25% CD overhead at 1M / 3M / 11M candidates).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Response time vs number of candidates (disk-resident DB)",
                "Figure 12 (16-proc IBM SP2, 100K tx, minsup 0.1% -> "
                "0.025%)");

  const int p = 16;
  const std::size_t n = bench::ScaledN(12000);
  TransactionDatabase db = GenerateQuest(bench::PaperWorkload(n));

  const MachineModel sp2 = MachineModel::IbmSp2();
  // Scale the per-node memory capacity with the workload: the paper's SP2
  // nodes hold ~0.7M of its candidates; our scaled runs overflow at the
  // same relative point of the sweep.
  MachineModel scaled_sp2 = sp2;
  scaled_sp2.memory_capacity_candidates = 130000;
  const CostModel model(scaled_sp2);

  std::printf("P = %d, N = %zu, per-node capacity = %zu candidates\n\n", p,
              db.size(), scaled_sp2.memory_capacity_candidates);
  std::printf("%10s %14s %10s %12s %12s %12s\n", "minsup%", "candidates",
              "CD scans", "CD", "IDD", "HD");

  for (double minsup : {0.01, 0.0075, 0.005, 0.0035, 0.0025}) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = minsup;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
    cfg.hd_threshold_m = scaled_sp2.memory_capacity_candidates;

    // CD is memory-capped: hash tree partitioned, DB re-scanned per chunk.
    ParallelConfig cd_cfg = cfg;
    cd_cfg.apriori.max_candidates_in_memory =
        scaled_sp2.memory_capacity_candidates;

    MiningReport cd = bench::Mine(Algorithm::kCD, db, p, cd_cfg);
    MiningReport idd = bench::Mine(Algorithm::kIDD, db, p, cfg);
    MiningReport hd = bench::Mine(Algorithm::kHD, db, p, cfg);

    std::size_t max_m = 0;
    std::size_t max_scans = 0;
    for (const auto& pass : cd.metrics.per_pass) {
      max_m = std::max(max_m, pass[0].num_candidates_global);
      max_scans = std::max(max_scans, pass[0].db_scans);
    }
    std::printf("%10.4f %14zu %10zu %12.2f %12.2f %12.2f\n", minsup * 100.0,
                max_m, max_scans, model.RunTime(Algorithm::kCD, cd.metrics),
                model.RunTime(Algorithm::kIDD, idd.metrics),
                model.RunTime(Algorithm::kHD, hd.metrics));
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: once CD needs multiple scans, IDD and HD win; the "
      "gap widens as M grows.\n");
  return 0;
}
