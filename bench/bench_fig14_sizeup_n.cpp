// Figure 14 reproduction: response time as the number of transactions
// grows (1.3M -> 26.1M in the paper) with the candidate count and the
// processor count fixed (M = 0.7M, P = 64, HD pinned to 8x8). Measures
// pass 3 only, like the paper.
//
// Expected shape (paper): CD and HD grow linearly in N and stay close;
// IDD grows faster (its load imbalance and O(N) data movement hurt), so
// its line sits clearly above the other two.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Response time vs number of transactions (pass 3 only)",
                "Figure 14 (N = 1.3M..26.1M, M = 0.7M, P = 64, HD 8x8)");

  const int p = 16;
  const CostModel model(MachineModel::CrayT3E());
  const std::size_t base_n = bench::ScaledN(4000);

  std::printf("P = %d, minsup fixed so |C_3| stays comparable\n\n", p);
  std::printf("%10s %12s %12s %12s %12s\n", "N", "|C_3|", "CD", "IDD", "HD");

  for (int mult : {1, 2, 4, 8}) {
    const std::size_t n = base_n * static_cast<std::size_t>(mult);
    TransactionDatabase db = GenerateQuest(bench::ScaleupWorkload(n));
    ParallelConfig cfg;
    // Fixed relative support keeps |C_3| near-constant as N grows, the
    // way the paper holds M = 0.7M across its N sweep.
    cfg.apriori.minsup_fraction = 0.02;
    cfg.apriori.max_k = 3;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
    cfg.hd_forced_rows = 4;  // fixed grid, the paper's 8x8 analogue

    std::size_t m3 = 0;
    double t[3] = {0, 0, 0};
    const Algorithm algs[] = {Algorithm::kCD, Algorithm::kIDD,
                              Algorithm::kHD};
    for (int a = 0; a < 3; ++a) {
      MiningReport result = bench::Mine(algs[a], db, p, cfg);
      for (int pass = 0; pass < result.metrics.num_passes(); ++pass) {
        const auto& row =
            result.metrics.per_pass[static_cast<std::size_t>(pass)];
        if (row[0].k == 3) {
          t[a] = model.PassTime(algs[a], row).Total();
          m3 = row[0].num_candidates_global;
        }
      }
    }
    std::printf("%10zu %12zu %12.3f %12.3f %12.3f\n", n, m3, t[0], t[1],
                t[2]);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: CD and HD scale linearly with N and overlap; IDD "
      "sits above them.\n");
  return 0;
}
