// Ablation: the PDM-style DHP pair-hash filter (paper refs [12], [15])
// against plain Apriori candidate generation. The filter spends extra
// pass-1 work (hashing every transaction pair) and one extra reduction to
// shrink C_2 — the pass whose candidate count dwarfs all others (Table II:
// 351K of the paper's candidates are pass-2). Reports C_2, total leaf
// visits, and modeled CD time per bucket-count setting.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("DHP pair-hash filter ablation",
                "PDM (paper ref [12]) = CD + DHP [15]; effect on C_2");

  const int p = 8;
  TransactionDatabase db =
      GenerateQuest(bench::PaperWorkload(bench::ScaledN(8000)));
  const CostModel model(MachineModel::CrayT3E());

  std::printf("P = %d, N = %zu, 0.75%% minimum support\n\n", p, db.size());
  std::printf("%12s %12s %14s %14s %12s\n", "buckets", "|C_2|",
              "leaf visits", "checks", "CD T3E (s)");

  for (std::size_t buckets :
       {std::size_t{0}, std::size_t{1} << 10, std::size_t{1} << 14,
        std::size_t{1} << 18, std::size_t{1} << 22}) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.0075;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.dhp_buckets = buckets;
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
    MiningReport result = bench::Mine(Algorithm::kCD, db, p, cfg);

    std::size_t c2 = 0;
    std::uint64_t visits = 0;
    std::uint64_t checks = 0;
    for (int pass = 1; pass < result.metrics.num_passes(); ++pass) {
      const auto& row =
          result.metrics.per_pass[static_cast<std::size_t>(pass)];
      if (row[0].k == 2) c2 = row[0].num_candidates_global;
      const SubsetStats stats = result.metrics.PassSubsetStats(pass);
      visits += stats.distinct_leaf_visits;
      checks += stats.leaf_candidates_checked;
    }
    std::printf("%12zu %12zu %14llu %14llu %12.3f\n", buckets, c2,
                static_cast<unsigned long long>(visits),
                static_cast<unsigned long long>(checks),
                model.RunTime(Algorithm::kCD, result.metrics));
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: C_2 shrinks monotonically with bucket count; "
      "frequent itemsets are identical\n(asserted by dhp_filter_test).\n");
  return 0;
}
