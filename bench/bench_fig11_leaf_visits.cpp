// Figure 11 reproduction: the average number of DISTINCT leaf nodes
// visited per transaction for DD vs IDD as the processor count grows
// (50K tx/proc, 0.2% minsup in the paper). This is a direct measurement of
// the paper's V quantities — no machine model involved: the hash tree
// instruments every Subset() call.
//
// Expected shape (paper): IDD's per-rank visits fall like V_{C/P, L/P}
// (roughly 1/P), while DD's V_{C, L/P} barely falls — the redundant-work
// gap that motivates intelligent partitioning.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Average distinct leaf nodes visited per transaction",
                "Figure 11 (DD vs IDD, 50K tx/proc, 0.2% minsup)");

  const std::size_t tx_per_rank = bench::ScaledN(300);
  std::printf("%zu transactions per processor, 0.5%% minimum support\n\n",
              tx_per_rank);
  std::printf("%6s %14s %14s %14s %18s\n", "P", "DD", "IDD", "serial(P=1)",
              "DD/IDD ratio");

  for (int p : {1, 2, 4, 8, 16, 32}) {
    TransactionDatabase db = GenerateQuest(bench::PaperWorkload(
        tx_per_rank * static_cast<std::size_t>(p)));
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.005;
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree

    MiningReport dd = bench::Mine(Algorithm::kDD, db, p, cfg);
    MiningReport idd = bench::Mine(Algorithm::kIDD, db, p, cfg);
    MiningReport serial = bench::Mine(Algorithm::kCD, db, 1, cfg);

    // Figure 11 plots the per-rank per-transaction average over the
    // candidate-heaviest pass.
    int heavy_pass = 1;
    std::size_t heavy_m = 0;
    for (int pass = 1; pass < dd.metrics.num_passes(); ++pass) {
      const std::size_t m = dd.metrics
                                .per_pass[static_cast<std::size_t>(pass)][0]
                                .num_candidates_global;
      if (m > heavy_m) {
        heavy_m = m;
        heavy_pass = pass;
      }
    }
    auto avg_visits = [heavy_pass](const MiningReport& r) {
      if (heavy_pass >= r.metrics.num_passes()) return 0.0;
      return r.metrics.PassSubsetStats(heavy_pass)
          .AvgLeafVisitsPerTransaction();
    };
    const double dd_avg = avg_visits(dd);
    const double idd_avg = avg_visits(idd);
    std::printf("%6d %14.2f %14.2f %14.2f %18.2f\n", p, dd_avg, idd_avg,
                avg_visits(serial), idd_avg > 0 ? dd_avg / idd_avg : 0.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: IDD's visits drop ~1/P; DD's stay near the serial "
      "level (ratio grows with P).\n");
  return 0;
}
