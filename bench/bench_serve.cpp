// Serving benchmark for the pam_serve mining server, in the style of the
// Shardmap tpcb_run driver: a multi-tenant request-mix generator drives
// the in-process daemon closed-loop, and the harness reports throughput
// and p50/p95/p99 request latency per client-concurrency level, plus an
// open-loop overload burst that exercises the admission-control and
// tenant-quota rejection paths. Writes BENCH_serve.json (the serving perf
// trajectory; committed at the repo root like BENCH_comm.json).
//
// Every mix cell is also verified against a solo MiningSession run of the
// same request — the server must add scheduling, never arithmetic — and
// the harness exits non-zero on any mismatch.
//
//   bench_serve [--smoke]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "pam/mp/fault.h"
#include "pam/serve/server.h"

namespace {

using pam::MiningAlgorithm;
using pam::MiningRequest;
using pam::serve::MiningServer;
using pam::serve::ServeResponse;
using pam::serve::ServerConfig;
using pam::serve::ServerStats;

/// One cell of the request mix: which tenant asks for what.
struct MixCell {
  const char* tenant;
  const char* dataset;
  MiningAlgorithm algorithm;
  int ranks;
  double minsup_fraction;
  bool rules;
  int threads;
};

/// The steady-state mix: four tenants with distinct algorithm diets over
/// two shared datasets, so the cache serves cross-tenant hits and the
/// rank pool sees wide (HD/HPA) and narrow (serial) requests interleaved.
const MixCell kMix[] = {
    {"alpha", "retail", MiningAlgorithm::kSerial, 1, 0.02, false, 1},
    {"alpha", "retail", MiningAlgorithm::kCD, 4, 0.02, false, 1},
    {"beta", "retail", MiningAlgorithm::kDD, 4, 0.025, false, 1},
    {"beta", "web", MiningAlgorithm::kDDComm, 2, 0.03, false, 1},
    {"gamma", "web", MiningAlgorithm::kIDD, 4, 0.03, false, 1},
    {"gamma", "retail", MiningAlgorithm::kHD, 4, 0.025, false, 1},
    {"delta", "web", MiningAlgorithm::kHPA, 3, 0.03, false, 2},
    {"delta", "retail", MiningAlgorithm::kSerial, 1, 0.02, true, 1},
};

MiningRequest RequestOf(const MixCell& cell) {
  MiningRequest request;
  request.tenant = cell.tenant;
  request.dataset = cell.dataset;
  request.algorithm = cell.algorithm;
  request.num_ranks = cell.ranks;
  request.config.apriori.minsup_fraction = cell.minsup_fraction;
  request.config.apriori.threads_per_rank = cell.threads;
  request.generate_rules = cell.rules;
  return request;
}

struct SectionResult {
  int clients = 0;
  std::size_t requests = 0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

double PercentileMs(std::vector<double>& sorted_seconds, double q) {
  if (sorted_seconds.empty()) return 0.0;
  const std::size_t n = sorted_seconds.size();
  std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_seconds[idx] * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  pam::bench::Banner(
      "bench_serve: multi-tenant mining-as-a-service driver",
      "north-star serving workload (ROADMAP item 1); tpcb_run-style "
      "request mix");

  // Two shared datasets, generated once and registered with the server's
  // cache (the cache pays one decode + one payload materialization per
  // dataset; every request after that is a refcount bump).
  pam::QuestConfig retail_cfg =
      pam::bench::PaperWorkload(pam::bench::ScaledN(smoke ? 600 : 2000));
  retail_cfg.num_items = 200;
  pam::QuestConfig web_cfg;
  web_cfg.num_transactions = pam::bench::ScaledN(smoke ? 400 : 1200);
  web_cfg.num_items = 120;
  web_cfg.avg_transaction_len = 9;
  web_cfg.avg_pattern_len = 4;
  web_cfg.num_patterns = 60;
  web_cfg.seed = 4242;
  const pam::TransactionDatabase retail = pam::GenerateQuest(retail_cfg);
  const pam::TransactionDatabase web = pam::GenerateQuest(web_cfg);
  std::printf("datasets: retail %zu tx, web %zu tx\n", retail.size(),
              web.size());

  // Solo references for every mix cell, mined outside the server.
  std::map<const MixCell*, std::map<std::vector<pam::Item>, pam::Count>>
      references;
  for (const MixCell& cell : kMix) {
    const pam::TransactionDatabase& db =
        std::string(cell.dataset) == "retail" ? retail : web;
    pam::MiningSession solo;
    pam::MiningReport report = solo.Run(RequestOf(cell), db);
    std::map<std::vector<pam::Item>, pam::Count> flat;
    for (const auto& level : report.frequent.levels) {
      for (std::size_t i = 0; i < level.size(); ++i) {
        pam::ItemSpan s = level.Get(i);
        flat[std::vector<pam::Item>(s.begin(), s.end())] = level.count(i);
      }
    }
    references[&cell] = std::move(flat);
  }

  ServerConfig config;
  config.pool_ranks = 8;
  config.workers = 4;
  config.max_queue = 256;

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 4, 8};
  const int iters_per_client = smoke ? 8 : 24;

  std::vector<SectionResult> sections;
  bool mismatch = false;

  for (const int clients : client_counts) {
    MiningServer server(config);
    server.datasets().RegisterLoaded("retail",
                                     pam::TransactionDatabase(retail));
    server.datasets().RegisterLoaded("web", pam::TransactionDatabase(web));

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        constexpr std::size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);
        for (int i = 0; i < iters_per_client; ++i) {
          const MixCell& cell =
              kMix[(static_cast<std::size_t>(c) + // stagger clients
                    static_cast<std::size_t>(i)) % kMixSize];
          const auto start = std::chrono::steady_clock::now();
          ServeResponse response = server.Execute(RequestOf(cell));
          const auto end = std::chrono::steady_clock::now();
          latencies[static_cast<std::size_t>(c)].push_back(
              std::chrono::duration<double>(end - start).count());
          if (!response.ok()) {
            std::printf("UNEXPECTED non-ok response: %s (%s)\n",
                        pam::serve::ServeStatusName(response.status),
                        response.error.c_str());
            mismatch = true;
          } else {
            // Exactness: the served result must equal the solo run.
            std::map<std::vector<pam::Item>, pam::Count> flat;
            for (const auto& level : response.report.frequent.levels) {
              for (std::size_t s = 0; s < level.size(); ++s) {
                pam::ItemSpan span = level.Get(s);
                flat[std::vector<pam::Item>(span.begin(), span.end())] =
                    level.count(s);
              }
            }
            if (flat != references[&cell]) {
              std::printf("MISMATCH: %s/%s served result != solo run\n",
                          cell.tenant,
                          pam::MiningAlgorithmName(cell.algorithm).c_str());
              mismatch = true;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    const ServerStats stats = server.Stats();
    server.Shutdown();

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());

    SectionResult section;
    section.clients = clients;
    section.requests = all.size();
    section.wall_seconds = wall;
    section.throughput_rps =
        wall > 0.0 ? static_cast<double>(all.size()) / wall : 0.0;
    section.p50_ms = PercentileMs(all, 0.50);
    section.p95_ms = PercentileMs(all, 0.95);
    section.p99_ms = PercentileMs(all, 0.99);
    section.max_ms = all.empty() ? 0.0 : all.back() * 1e3;
    section.cache_hits = stats.cache_hits;
    section.cache_misses = stats.cache_misses;
    sections.push_back(section);

    std::printf(
        "clients=%d  %zu req in %.2fs  %.1f req/s  p50 %.1fms  p95 %.1fms "
        " p99 %.1fms  max %.1fms  cache %llu/%llu hits\n",
        clients, section.requests, wall, section.throughput_rps,
        section.p50_ms, section.p95_ms, section.p99_ms, section.max_ms,
        static_cast<unsigned long long>(section.cache_hits),
        static_cast<unsigned long long>(section.cache_hits +
                                        section.cache_misses));
  }

  // Overload burst: a deliberately tiny server hammered open-loop, so the
  // bounded queue and the per-tenant in-flight quota must both reject.
  ServerConfig tiny;
  tiny.pool_ranks = 4;
  tiny.workers = 2;
  tiny.max_queue = 4;
  tiny.tenant_quotas["alpha"] = {/*max_in_flight=*/2, /*rank_seconds=*/0.0};
  MiningServer overload(tiny);
  overload.datasets().RegisterLoaded("web", pam::TransactionDatabase(web));
  std::vector<std::future<ServeResponse>> burst;
  const int burst_size = smoke ? 24 : 64;
  for (int i = 0; i < burst_size; ++i) {
    MiningRequest request;
    request.tenant = i % 2 == 0 ? "alpha" : "beta";
    request.dataset = "web";
    request.algorithm = MiningAlgorithm::kCD;
    request.num_ranks = 2;
    request.config.apriori.minsup_fraction = 0.03;
    burst.push_back(overload.Submit(std::move(request)));
  }
  std::size_t burst_ok = 0;
  for (auto& f : burst) {
    if (f.get().ok()) ++burst_ok;
  }
  const ServerStats burst_stats = overload.Stats();
  overload.Shutdown();
  std::printf(
      "overload burst: %d submitted, %zu ok, %llu queue_full, %llu "
      "quota rejections (typed, synchronous)\n",
      burst_size, burst_ok,
      static_cast<unsigned long long>(burst_stats.rejected_queue_full),
      static_cast<unsigned long long>(
          burst_stats.rejected_tenant_in_flight));
  if (burst_stats.submitted !=
      burst_stats.admitted + burst_stats.TotalRejected()) {
    std::printf("MISMATCH: admission accounting does not balance\n");
    mismatch = true;
  }

  // Deadline mix (DESIGN.md §13): a fraction of the load carries a tight
  // deadline and a stall fault plan, so those requests are shed in queue
  // or cancelled mid-run while the rest of the mix keeps flowing. Reports
  // the shed rate of the tight slice and the latency the *survivors* paid
  // — the robustness number: deadlines must cost the well-behaved load
  // nothing but queue contention.
  ServerConfig dl_config;
  dl_config.pool_ranks = 8;
  dl_config.workers = 4;
  dl_config.max_queue = 256;
  MiningServer deadline_server(dl_config);
  deadline_server.datasets().RegisterLoaded("retail",
                                            pam::TransactionDatabase(retail));
  deadline_server.datasets().RegisterLoaded("web",
                                            pam::TransactionDatabase(web));
  const int dl_clients = smoke ? 2 : 4;
  const int dl_iters = smoke ? 8 : 24;
  const int kTightEvery = 4;  // 25% tight-deadline fraction
  std::vector<std::vector<double>> survivor_lat(
      static_cast<std::size_t>(dl_clients));
  std::atomic<int> tight_total{0}, tight_shed{0}, dl_wrong{0};
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < dl_clients; ++c) {
      threads.emplace_back([&, c] {
        constexpr std::size_t kMixSize = sizeof(kMix) / sizeof(kMix[0]);
        for (int i = 0; i < dl_iters; ++i) {
          const int cell_idx = c * dl_iters + i;
          const MixCell& cell =
              kMix[static_cast<std::size_t>(cell_idx) % kMixSize];
          MiningRequest request = RequestOf(cell);
          const bool tight = cell_idx % kTightEvery == 0;
          if (tight) {
            // Slowed by an always-stall plan and given a deadline it
            // cannot reliably make; forced parallel so the stalls apply.
            request.algorithm = MiningAlgorithm::kCD;
            request.num_ranks = 3;
            request.config.fault = pam::FaultConfig::Uniform(
                pam::FaultKind::kStall, 1.0,
                /*seed=*/static_cast<std::uint64_t>(cell_idx));
            request.config.fault.stall_ticks_ms = 40;
            request.config.fault.recv_timeout_ms = 120000;
            request.deadline_ms = 30.0;
            ++tight_total;
          }
          const auto start = std::chrono::steady_clock::now();
          ServeResponse response = deadline_server.Execute(std::move(request));
          const auto end = std::chrono::steady_clock::now();
          switch (response.status) {
            case pam::serve::ServeStatus::kOk:
              survivor_lat[static_cast<std::size_t>(c)].push_back(
                  std::chrono::duration<double>(end - start).count());
              break;
            case pam::serve::ServeStatus::kDeadlineExceeded:
              ++tight_shed;
              break;
            default:
              std::printf("UNEXPECTED deadline-mix response: %s (%s)\n",
                          pam::serve::ServeStatusName(response.status),
                          response.error.c_str());
              ++dl_wrong;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const ServerStats dl_stats = deadline_server.Stats();
  deadline_server.Shutdown();
  if (dl_wrong.load() > 0) mismatch = true;
  if (dl_stats.admitted != dl_stats.completed + dl_stats.mining_faults +
                               dl_stats.cancelled +
                               dl_stats.deadline_exceeded) {
    std::printf("MISMATCH: deadline-mix accounting does not balance\n");
    mismatch = true;
  }
  std::vector<double> survivors;
  for (const auto& per_client : survivor_lat) {
    survivors.insert(survivors.end(), per_client.begin(), per_client.end());
  }
  std::sort(survivors.begin(), survivors.end());
  const double shed_rate =
      tight_total.load() > 0
          ? static_cast<double>(tight_shed.load()) / tight_total.load()
          : 0.0;
  const double surv_p95 = PercentileMs(survivors, 0.95);
  const double surv_p99 = PercentileMs(survivors, 0.99);
  std::printf(
      "deadline mix: %d req (%d tight @30ms), shed rate %.0f%%, %zu "
      "survivors p95 %.1fms p99 %.1fms, %llu expired in queue\n",
      dl_clients * dl_iters, tight_total.load(), shed_rate * 100.0,
      survivors.size(), surv_p95, surv_p99,
      static_cast<unsigned long long>(dl_stats.expired_in_queue));

  // Result cache, hot vs cold (DESIGN.md §15): the same mix driven twice
  // through a cache-enabled server. The first pass mines (4 of the 8 mix
  // cells are distinct mining problems once the canonical digest strips
  // the formulation knobs — the other 4 hit immediately); the second pass
  // is all hits. A hit must be byte-identical to the solo reference and
  // lease zero ranks, and the latency gap is the point of the feature.
  ServerConfig rc_config;
  rc_config.pool_ranks = 8;
  rc_config.workers = 4;
  rc_config.max_queue = 256;
  rc_config.result_cache = true;
  MiningServer rc_server(rc_config);
  rc_server.datasets().RegisterLoaded("retail",
                                      pam::TransactionDatabase(retail));
  rc_server.datasets().RegisterLoaded("web", pam::TransactionDatabase(web));
  std::vector<double> rc_miss_lat, rc_hit_lat;
  const std::uint64_t rc_leases_before = rc_server.pool().LeasesGranted();
  std::uint64_t rc_leases_after_cold = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (const MixCell& cell : kMix) {
      const auto start = std::chrono::steady_clock::now();
      ServeResponse response = rc_server.Execute(RequestOf(cell));
      const auto end = std::chrono::steady_clock::now();
      const double lat =
          std::chrono::duration<double>(end - start).count();
      if (!response.ok()) {
        std::printf("UNEXPECTED result-cache response: %s (%s)\n",
                    pam::serve::ServeStatusName(response.status),
                    response.error.c_str());
        mismatch = true;
        continue;
      }
      (response.from_result_cache ? rc_hit_lat : rc_miss_lat).push_back(lat);
      if (pass == 1 && !response.from_result_cache) {
        std::printf("MISMATCH: second-pass request missed the result cache "
                    "(%s/%s)\n",
                    cell.tenant,
                    pam::MiningAlgorithmName(cell.algorithm).c_str());
        mismatch = true;
      }
      // Hits must be byte-identical to the solo reference, like misses.
      std::map<std::vector<pam::Item>, pam::Count> flat;
      for (const auto& level : response.report.frequent.levels) {
        for (std::size_t s = 0; s < level.size(); ++s) {
          pam::ItemSpan span = level.Get(s);
          flat[std::vector<pam::Item>(span.begin(), span.end())] =
              level.count(s);
        }
      }
      if (flat != references[&cell]) {
        std::printf("MISMATCH: result-cache response != solo run (%s/%s)\n",
                    cell.tenant,
                    pam::MiningAlgorithmName(cell.algorithm).c_str());
        mismatch = true;
      }
    }
    if (pass == 0) rc_leases_after_cold = rc_server.pool().LeasesGranted();
  }
  const std::uint64_t rc_hot_leases =
      rc_server.pool().LeasesGranted() - rc_leases_after_cold;
  const ServerStats rc_stats = rc_server.Stats();
  rc_server.Shutdown();
  if (rc_hot_leases != 0) {
    std::printf("MISMATCH: hot pass leased %llu ranks (want 0)\n",
                static_cast<unsigned long long>(rc_hot_leases));
    mismatch = true;
  }
  std::sort(rc_miss_lat.begin(), rc_miss_lat.end());
  std::sort(rc_hit_lat.begin(), rc_hit_lat.end());
  const double rc_cold_p50 = PercentileMs(rc_miss_lat, 0.50);
  const double rc_hot_p50 = PercentileMs(rc_hit_lat, 0.50);
  std::printf(
      "result cache: %zu mined (p50 %.2fms) vs %zu hits (p50 %.3fms), "
      "%.0fx hot-path latency drop, %llu bytes resident, 0 hot leases "
      "(leases: %llu cold)\n",
      rc_miss_lat.size(), rc_cold_p50, rc_hit_lat.size(), rc_hot_p50,
      rc_hot_p50 > 0.0 ? rc_cold_p50 / rc_hot_p50 : 0.0,
      static_cast<unsigned long long>(rc_stats.result_resident_bytes),
      static_cast<unsigned long long>(rc_leases_after_cold -
                                      rc_leases_before));

  // Weighted fairness (DESIGN.md §15): a weight-3 and a weight-1 tenant
  // flood a one-worker server with equal-cost jobs; SFQ must hand the
  // heavy tenant ~3x the completions in any saturated window. A slow
  // primer job holds the worker while both backlogs queue, making the
  // dispatch order deterministic.
  ServerConfig wf_config;
  wf_config.pool_ranks = 4;
  wf_config.workers = 1;
  wf_config.max_queue = 256;
  wf_config.tenant_quotas["heavy"].weight = 3.0;
  wf_config.tenant_quotas["light"].weight = 1.0;
  MiningServer wf_server(wf_config);
  wf_server.datasets().RegisterLoaded("retail",
                                      pam::TransactionDatabase(retail));
  wf_server.datasets().RegisterLoaded("web", pam::TransactionDatabase(web));
  std::future<ServeResponse> wf_primer =
      wf_server.Submit(RequestOf(kMix[1]));  // CD/4: long enough to queue behind
  std::mutex wf_mu;
  std::vector<std::string> wf_order;
  const int wf_jobs_per_tenant = smoke ? 8 : 16;
  for (int i = 0; i < wf_jobs_per_tenant; ++i) {
    for (const char* tenant : {"heavy", "light"}) {
      MiningRequest request;
      request.tenant = tenant;
      request.dataset = "web";
      request.algorithm = MiningAlgorithm::kSerial;
      request.num_ranks = 1;
      request.config.apriori.minsup_fraction = 0.03;
      wf_server.SubmitWith(std::move(request),
                           [&wf_mu, &wf_order, tenant](ServeResponse r) {
                             if (!r.ok()) return;
                             std::lock_guard<std::mutex> lock(wf_mu);
                             wf_order.emplace_back(tenant);
                           });
    }
  }
  wf_primer.get();
  wf_server.Shutdown();
  const std::size_t wf_window =
      std::min<std::size_t>(8, wf_order.size());
  const auto wf_heavy_in_window = static_cast<std::size_t>(std::count(
      wf_order.begin(), wf_order.begin() + static_cast<std::ptrdiff_t>(wf_window),
      "heavy"));
  const std::size_t wf_light_in_window = wf_window - wf_heavy_in_window;
  const double wf_ratio =
      wf_light_in_window > 0
          ? static_cast<double>(wf_heavy_in_window) / wf_light_in_window
          : static_cast<double>(wf_heavy_in_window);
  std::printf(
      "weighted fairness: 3:1 weights, first %zu completions split "
      "%zu/%zu (ratio %.1f), %zu jobs per tenant all served\n",
      wf_window, wf_heavy_in_window, wf_light_in_window, wf_ratio,
      wf_order.size() / 2);
  if (wf_order.size() != 2 * static_cast<std::size_t>(wf_jobs_per_tenant)) {
    std::printf("MISMATCH: weighted-fairness jobs lost (%zu of %d)\n",
                wf_order.size(), 2 * wf_jobs_per_tenant);
    mismatch = true;
  }

  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"bench\": \"serve\",\n  \"smoke\": %s,\n"
                 "  \"pool_ranks\": %d,\n  \"workers\": %d,\n"
                 "  \"tenants\": 4,\n  \"datasets\": 2,\n"
                 "  \"retail_transactions\": %zu,\n"
                 "  \"web_transactions\": %zu,\n  \"sections\": [\n",
                 smoke ? "true" : "false", config.pool_ranks,
                 config.workers, retail.size(), web.size());
    for (std::size_t i = 0; i < sections.size(); ++i) {
      const SectionResult& s = sections[i];
      std::fprintf(
          f,
          "    {\"clients\": %d, \"requests\": %zu, \"wall_seconds\": "
          "%.4f, \"throughput_rps\": %.2f, \"p50_ms\": %.3f, \"p95_ms\": "
          "%.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, \"cache_hits\": "
          "%llu, \"cache_misses\": %llu}%s\n",
          s.clients, s.requests, s.wall_seconds, s.throughput_rps,
          s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms,
          static_cast<unsigned long long>(s.cache_hits),
          static_cast<unsigned long long>(s.cache_misses),
          i + 1 < sections.size() ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n  \"overload\": {\"submitted\": %llu, \"admitted\": %llu, "
        "\"queue_full\": %llu, \"tenant_in_flight\": %llu},\n",
        static_cast<unsigned long long>(burst_stats.submitted),
        static_cast<unsigned long long>(burst_stats.admitted),
        static_cast<unsigned long long>(burst_stats.rejected_queue_full),
        static_cast<unsigned long long>(
            burst_stats.rejected_tenant_in_flight));
    std::fprintf(
        f,
        "  \"deadline_mix\": {\"requests\": %d, \"tight_fraction\": %.2f, "
        "\"deadline_ms\": 30.0, \"tight_requests\": %d, \"shed_rate\": "
        "%.3f, \"expired_in_queue\": %llu, \"survivors\": %zu, "
        "\"survivor_p95_ms\": %.3f, \"survivor_p99_ms\": %.3f},\n",
        dl_clients * dl_iters, 1.0 / kTightEvery, tight_total.load(),
        shed_rate, static_cast<unsigned long long>(dl_stats.expired_in_queue),
        survivors.size(), surv_p95, surv_p99);
    std::fprintf(
        f,
        "  \"result_cache\": {\"mined\": %zu, \"hits\": %zu, "
        "\"cold_p50_ms\": %.3f, \"hot_p50_ms\": %.4f, \"speedup\": %.1f, "
        "\"hot_leases\": %llu, \"resident_bytes\": %llu},\n",
        rc_miss_lat.size(), rc_hit_lat.size(), rc_cold_p50, rc_hot_p50,
        rc_hot_p50 > 0.0 ? rc_cold_p50 / rc_hot_p50 : 0.0,
        static_cast<unsigned long long>(rc_hot_leases),
        static_cast<unsigned long long>(rc_stats.result_resident_bytes));
    std::fprintf(
        f,
        "  \"weighted_fairness\": {\"heavy_weight\": 3.0, "
        "\"light_weight\": 1.0, \"jobs_per_tenant\": %d, \"window\": %zu, "
        "\"heavy_in_window\": %zu, \"light_in_window\": %zu, "
        "\"ratio\": %.2f}\n}\n",
        wf_jobs_per_tenant, wf_window, wf_heavy_in_window,
        wf_light_in_window, wf_ratio);
    std::fclose(f);
    std::printf("wrote BENCH_serve.json\n");
  }

  if (mismatch) {
    std::printf("FAILED: served results diverged from solo runs\n");
    return 1;
  }
  std::printf("all served results byte-identical to solo runs\n");
  return 0;
}
