// Ablation bench for the design choices DESIGN.md stars:
//   1. bin-packed vs contiguous first-item partitioning (paper III-C's
//      bad-partition example),
//   2. the root bitmap filter (Figure 8) on vs off,
//   3. heavy-prefix splitting on vs off under skew.
// Reports candidate balance, subset work, and modeled T3E time for IDD.

#include <cstdio>

#include "bench_util.h"

namespace {

struct Variant {
  const char* name;
  pam::PrefixStrategy strategy;
  bool bitmap;
  bool split_heavy;
};

}  // namespace

int main() {
  using namespace pam;
  bench::Banner("IDD partitioning ablations",
                "Section III-C design choices (bin packing, bitmap filter, "
                "heavy-prefix splitting)");

  const int p = 8;
  TransactionDatabase db =
      GenerateQuest(bench::PaperWorkload(bench::ScaledN(6000)));
  const CostModel model(MachineModel::CrayT3E());

  const Variant variants[] = {
      {"full IDD (packed+bitmap+split)", PrefixStrategy::kBinPacked, true,
       true},
      {"no heavy-prefix split", PrefixStrategy::kBinPacked, true, false},
      {"no bitmap filter", PrefixStrategy::kBinPacked, false, true},
      {"contiguous partition", PrefixStrategy::kContiguous, true, false},
      {"contiguous, no bitmap", PrefixStrategy::kContiguous, false, false},
  };

  std::printf("P = %d, N = %zu, 0.25%% minimum support\n\n", p, db.size());
  std::printf("%-34s %14s %14s %14s %12s\n", "variant", "trav steps",
              "leaf visits", "imbalance", "T3E (s)");

  for (const Variant& v : variants) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.0025;
    cfg.prefix_strategy = v.strategy;
    cfg.idd_use_bitmap = v.bitmap;
    cfg.split_heavy_prefixes = v.split_heavy;

    MiningReport result = bench::Mine(Algorithm::kIDD, db, p, cfg);
    std::uint64_t steps = 0;
    std::uint64_t visits = 0;
    double heaviest_work = -1.0;
    double imbalance = 1.0;
    for (int pass = 1; pass < result.metrics.num_passes(); ++pass) {
      const SubsetStats stats = result.metrics.PassSubsetStats(pass);
      steps += stats.traversal_steps;
      visits += stats.distinct_leaf_visits;
      const LoadSummary balance = result.metrics.SubsetWorkBalance(pass);
      if (balance.total > heaviest_work) {
        heaviest_work = balance.total;
        imbalance = balance.imbalance;
      }
    }
    std::printf("%-34s %14llu %14llu %13.1f%% %12.3f\n", v.name,
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(visits),
                (imbalance - 1.0) * 100.0,
                model.RunTime(Algorithm::kIDD, result.metrics));
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: removing the bitmap inflates traversal work; "
      "contiguous partitioning inflates imbalance.\n");
  return 0;
}
