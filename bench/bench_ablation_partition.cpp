// Ablation bench for the design choices DESIGN.md stars:
//   1. bin-packed vs contiguous first-item partitioning (paper III-C's
//      bad-partition example),
//   2. the root bitmap filter (Figure 8) on vs off,
//   3. heavy-prefix splitting on vs off under skew,
//   4. adaptive (measured-weight) repartitioning vs both static strategies
//      on skewed-prefix generator scenarios (DESIGN.md §14).
// Reports candidate balance, subset work, and modeled T3E time for IDD.

#include <cstdio>

#include "bench_util.h"

namespace {

struct Variant {
  const char* name;
  pam::PrefixStrategy strategy;
  bool bitmap;
  bool split_heavy;
};

// Skewed-prefix generator scenarios: each stacks more cost skew onto the
// first items, from the paper-shaped baseline (no hot prefix) to a hot
// block soaking up 40% of item draws.
struct SkewScenario {
  const char* name;
  pam::Item hot_items;
  double hot_mass;
  double corruption;
};

// Candidate-count parity with cost disparity needs many patterns over a
// big universe at low corruption (the structured candidate runs stay
// cheap while the hot block densifies); see bench_balance.cpp.
pam::QuestConfig SkewWorkload(std::size_t n, const SkewScenario& s) {
  pam::QuestConfig q;
  q.num_transactions = n;
  q.num_items = 2000;
  q.avg_transaction_len = 16;
  q.avg_pattern_len = 6;
  q.num_patterns = 80;
  q.corruption_mean = s.corruption;
  q.hot_items = s.hot_items;
  q.hot_item_mass = s.hot_mass;
  q.seed = 7;
  return q;
}

// Work-weighted total imbalance across the hash-tree passes: sum of
// per-pass maxima over sum of per-pass means.
double TotalImbalance(const pam::RunMetrics& metrics) {
  double total_max = 0.0;
  double total_mean = 0.0;
  for (int pass = 1; pass < metrics.num_passes(); ++pass) {
    const pam::LoadSummary s = metrics.SubsetWorkBalance(pass);
    if (s.mean <= 0.0) continue;
    total_max += s.max;
    total_mean += s.mean;
  }
  return total_mean > 0.0 ? total_max / total_mean : 1.0;
}

}  // namespace

int main() {
  using namespace pam;
  bench::Banner("IDD partitioning ablations",
                "Section III-C design choices (bin packing, bitmap filter, "
                "heavy-prefix splitting)");

  const int p = 8;
  TransactionDatabase db =
      GenerateQuest(bench::PaperWorkload(bench::ScaledN(6000)));
  const CostModel model(MachineModel::CrayT3E());

  const Variant variants[] = {
      {"full IDD (packed+bitmap+split)", PrefixStrategy::kBinPacked, true,
       true},
      {"no heavy-prefix split", PrefixStrategy::kBinPacked, true, false},
      {"no bitmap filter", PrefixStrategy::kBinPacked, false, true},
      {"contiguous partition", PrefixStrategy::kContiguous, true, false},
      {"contiguous, no bitmap", PrefixStrategy::kContiguous, false, false},
  };

  std::printf("P = %d, N = %zu, 0.25%% minimum support\n\n", p, db.size());
  std::printf("%-34s %14s %14s %14s %12s\n", "variant", "trav steps",
              "leaf visits", "imbalance", "T3E (s)");

  for (const Variant& v : variants) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.0025;
    cfg.prefix_strategy = v.strategy;
    cfg.idd_use_bitmap = v.bitmap;
    cfg.split_heavy_prefixes = v.split_heavy;

    MiningReport result = bench::Mine(Algorithm::kIDD, db, p, cfg);
    std::uint64_t steps = 0;
    std::uint64_t visits = 0;
    double heaviest_work = -1.0;
    double imbalance = 1.0;
    for (int pass = 1; pass < result.metrics.num_passes(); ++pass) {
      const SubsetStats stats = result.metrics.PassSubsetStats(pass);
      steps += stats.traversal_steps;
      visits += stats.distinct_leaf_visits;
      const LoadSummary balance = result.metrics.SubsetWorkBalance(pass);
      if (balance.total > heaviest_work) {
        heaviest_work = balance.total;
        imbalance = balance.imbalance;
      }
    }
    std::printf("%-34s %14llu %14llu %13.1f%% %12.3f\n", v.name,
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(visits),
                (imbalance - 1.0) * 100.0,
                model.RunTime(Algorithm::kIDD, result.metrics));
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: removing the bitmap inflates traversal work; "
      "contiguous partitioning inflates imbalance.\n");

  // Part 2 — skewed-prefix scenarios: static-contiguous vs static-binpack
  // vs adaptive, by work-weighted total imbalance (sum of per-pass maxima
  // over sum of per-pass means).
  std::printf("\nskewed-prefix scenarios (excess imbalance = max/mean - 1):\n");
  std::printf("%-26s %14s %14s %14s\n", "scenario", "contiguous", "binpack",
              "adaptive");

  const SkewScenario scenarios[] = {
      {"paper-shaped (no hot)", 0, 0.0, 0.5},
      {"structured, no hot", 0, 0.0, 0.15},
      {"hot 40 @ 30%", 40, 0.3, 0.15},
      {"hot 40 @ 40%", 40, 0.4, 0.15},
  };
  const Variant skew_variants[] = {
      {"contiguous", PrefixStrategy::kContiguous, true, false},
      {"binpack", PrefixStrategy::kBinPacked, true, true},
      {"adaptive", PrefixStrategy::kBinPacked, true, true},
  };

  for (const SkewScenario& s : scenarios) {
    TransactionDatabase skew_db =
        GenerateQuest(SkewWorkload(bench::ScaledN(4000), s));
    double excess[3] = {0.0, 0.0, 0.0};
    for (int i = 0; i < 3; ++i) {
      ParallelConfig cfg;
      cfg.apriori.minsup_fraction = 0.01;
      cfg.prefix_strategy = skew_variants[i].strategy;
      cfg.split_heavy_prefixes = skew_variants[i].split_heavy;
      cfg.adaptive_balance = i == 2;
      MiningReport result = bench::Mine(Algorithm::kIDD, skew_db, p, cfg);
      excess[i] = (TotalImbalance(result.metrics) - 1.0) * 100.0;
    }
    std::printf("%-26s %13.1f%% %13.1f%% %13.1f%%\n", s.name, excess[0],
                excess[1], excess[2]);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: adaptive never trails binpack, and the gap widens "
      "where candidate counts mispredict cost (structured runs, hot "
      "prefix).\n");
  return 0;
}
