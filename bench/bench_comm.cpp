// Transport microbenchmark: zero-copy shared-payload forwarding vs the
// legacy copy-per-hop regime, plus the acceptance scenario for the
// zero-copy rework — the Figure 6 ring pipeline circulating a
// T10.I4.D100K database at P = 8 — and a cross-formulation equivalence
// check (serial vs CD/DD/IDD/HD frequent itemsets must be identical).
// Writes BENCH_comm.json. Exits non-zero if any formulation disagrees.
//
// "legacy" mode reproduces the pre-payload transport cost model inside the
// current API: every hop receives into an owned vector (one copy out of
// the transport) and re-sends the raw bytes (one copy into a fresh payload
// plus a from-scratch checksum). "zero_copy" forwards the received handle.
//
// Usage: bench_comm [--smoke]   (--smoke shrinks every axis for CI)

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pam/mp/payload.h"
#include "pam/mp/runtime.h"
#include "pam/parallel/common.h"
#include "pam/util/timer.h"

namespace {

using namespace pam;

// The classic T10.I4 workload (10-item transactions, 4-item patterns,
// 1000 items), as in bench_hashtree_kernel.
QuestConfig RingWorkload(std::size_t n) {
  QuestConfig q;
  q.num_transactions = n;
  q.num_items = 1000;
  q.avg_transaction_len = 10;
  q.avg_pattern_len = 4;
  q.num_patterns = 400;
  q.seed = 1997;
  return q;
}

// ---- Forward-depth sweep -------------------------------------------------

// Every rank seeds one payload of `payload_bytes` and the ring forwards
// for `depth` hops (each rank sends `depth` messages and receives
// `depth`). Returns the best wall time over `reps` repetitions.
double TimeForwardChain(int p, std::size_t payload_bytes, int depth,
                        bool zero_copy, int reps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Runtime rt(p);
    WallTimer timer;
    rt.Run([&](Comm& comm) {
      const std::vector<std::byte> seed(
          payload_bytes, std::byte{static_cast<unsigned char>(comm.rank())});
      if (zero_copy) {
        Payload current = Payload::Copy(seed);
        for (int hop = 0; hop < depth; ++hop) {
          comm.Isend(comm.RightNeighbor(), kTagRingData, std::move(current));
          current = comm.RecvPayload(comm.LeftNeighbor(), kTagRingData);
        }
      } else {
        std::vector<std::byte> current = seed;
        for (int hop = 0; hop < depth; ++hop) {
          comm.Isend(comm.RightNeighbor(), kTagRingData,
                     std::span<const std::byte>(current));  // copy + checksum
          current = comm.Recv(comm.LeftNeighbor(), kTagRingData);  // copy out
        }
      }
    });
    const double s = timer.Seconds();
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

struct SweepPoint {
  int p = 0;
  std::size_t payload_bytes = 0;
  int depth = 0;
  double legacy_seconds = 0.0;
  double zero_copy_seconds = 0.0;
};

void AppendSweepJson(std::string* out, const SweepPoint& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "    {\"p\": %d, \"payload_bytes\": %zu, \"depth\": %d,\n"
                "     \"legacy_seconds\": %.6f, \"zero_copy_seconds\": %.6f,\n"
                "     \"speedup\": %.3f}",
                s.p, s.payload_bytes, s.depth, s.legacy_seconds,
                s.zero_copy_seconds, s.legacy_seconds / s.zero_copy_seconds);
  *out += buf;
}

// ---- Ring-shift acceptance scenario --------------------------------------

// The pre-change RingShiftAll, shape-for-shape (copy out of the transport
// into an owned Page each hop, re-wrap into a fresh payload on re-send),
// used as the "before" side of the comparison.
std::uint64_t LegacyRingShiftAll(Comm& comm,
                                 const std::vector<Page>& local_pages,
                                 const std::function<void(PageView)>& process) {
  const int p = comm.size();
  if (p == 1) {
    for (const Page& page : local_pages) process(page);
    return 0;
  }
  std::uint64_t rounds = local_pages.size();
  comm.AllReduceMax(std::span<std::uint64_t>(&rounds, 1));
  std::uint64_t bytes_sent = 0;
  const Page empty_page;
  Page sbuf;
  Page rbuf;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    sbuf = round < local_pages.size() ? local_pages[round] : empty_page;
    for (int step = 0; step < p - 1; ++step) {
      RecvRequest req = comm.Irecv(comm.LeftNeighbor(), kTagRingData);
      comm.Isend(comm.RightNeighbor(), kTagRingData,
                 std::span<const std::byte>(
                     reinterpret_cast<const std::byte*>(sbuf.data()),
                     sbuf.size() * sizeof(std::uint32_t)));
      bytes_sent += sbuf.size() * sizeof(std::uint32_t);
      if (!sbuf.empty()) process(sbuf);
      comm.Wait(req);
      rbuf.assign(reinterpret_cast<const std::uint32_t*>(req.data().data()),
                  reinterpret_cast<const std::uint32_t*>(req.data().data() +
                                                         req.data().size()));
      std::swap(sbuf, rbuf);
    }
    if (!sbuf.empty()) process(sbuf);
  }
  return bytes_sent;
}

struct RingScenario {
  std::size_t transactions = 0;
  int p = 0;
  std::size_t page_bytes = 0;
  double legacy_seconds = 0.0;
  double zero_copy_seconds = 0.0;
  std::uint64_t checksum_legacy = 0;  // word-sum over all processed pages
  std::uint64_t checksum_zero_copy = 0;
};

RingScenario TimeRingScenario(const TransactionDatabase& db, int p,
                              std::size_t page_bytes, int reps) {
  RingScenario out;
  out.transactions = db.size();
  out.p = p;
  out.page_bytes = page_bytes;
  for (int mode = 0; mode < 2; ++mode) {
    const bool zero_copy = mode == 1;
    double best = 0.0;
    std::uint64_t wordsum = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Runtime rt(p);
      std::atomic<std::uint64_t> sum{0};
      WallTimer timer;
      rt.Run([&](Comm& comm) {
        const std::vector<Page> pages =
            Paginate(db, db.RankSlice(comm.rank(), comm.size()), page_bytes);
        // A light touch per word keeps the page resident without letting
        // counting dominate transport (the thing being measured).
        std::uint64_t local = 0;
        auto process = [&local](PageView page) {
          for (std::uint32_t w : page) local += w;
        };
        if (zero_copy) {
          parallel_internal::RingShiftAll(comm, pages, process, nullptr);
        } else {
          LegacyRingShiftAll(comm, pages, process);
        }
        sum += local;
      });
      const double s = timer.Seconds();
      if (rep == 0 || s < best) best = s;
      wordsum = sum.load();
    }
    if (zero_copy) {
      out.zero_copy_seconds = best;
      out.checksum_zero_copy = wordsum;
    } else {
      out.legacy_seconds = best;
      out.checksum_legacy = wordsum;
    }
  }
  return out;
}

// ---- Cross-formulation equivalence ---------------------------------------

bool MiningOutputsIdentical(const TransactionDatabase& db, int p,
                            std::string* detail) {
  AprioriConfig apriori;
  apriori.minsup_fraction = 0.005;
  const SerialResult serial = MineSerial(db, apriori);

  ParallelConfig config;
  config.apriori = apriori;
  bool ok = true;
  for (Algorithm algorithm : {Algorithm::kCD, Algorithm::kDD, Algorithm::kIDD,
                              Algorithm::kHD}) {
    const MiningReport result = bench::Mine(algorithm, db, p, config);
    const bool same = bench::SameItemsets(serial.frequent, result.frequent);
    ok = ok && same;
    *detail += (detail->empty() ? "" : ", ") + AlgorithmName(algorithm) +
               (same ? "=ok" : "=MISMATCH");
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::Banner("Zero-copy transport: shared-payload forwarding vs "
                "copy-per-hop",
                "engineering baseline for the Figure 6 ring pipeline "
                "(T10.I4 workload)");

  const int reps = smoke ? 1 : 3;

  // Forward-depth sweep: cost of a hop as a function of payload size, ring
  // size, and chain depth.
  std::vector<SweepPoint> sweep;
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16 * 1024}
            : std::vector<std::size_t>{4 * 1024, 64 * 1024, 1024 * 1024};
  const std::vector<int> rings = smoke ? std::vector<int>{4}
                                       : std::vector<int>{4, 8};
  const int depth = smoke ? 8 : 64;
  for (int p : rings) {
    for (std::size_t bytes : sizes) {
      SweepPoint point;
      point.p = p;
      point.payload_bytes = bytes;
      point.depth = depth;
      point.legacy_seconds = TimeForwardChain(p, bytes, depth, false, reps);
      point.zero_copy_seconds = TimeForwardChain(p, bytes, depth, true, reps);
      sweep.push_back(point);
      std::printf(
          "forward p=%d  %7zu B  depth %3d:  legacy %8.4f s  "
          "zero-copy %8.4f s  speedup %5.2fx\n",
          p, bytes, depth, point.legacy_seconds, point.zero_copy_seconds,
          point.legacy_seconds / point.zero_copy_seconds);
    }
  }

  // Acceptance scenario: the whole database around a P=8 ring, page 16 KiB.
  const std::size_t n = bench::ScaledN(smoke ? 10000 : 100000);
  const TransactionDatabase db = GenerateQuest(RingWorkload(n));
  const int ring_p = smoke ? 4 : 8;
  const RingScenario ring = TimeRingScenario(db, ring_p, 16 * 1024, reps);
  std::printf(
      "\nring shift T10.I4.D%zu p=%d page=16K: legacy %8.4f s  "
      "zero-copy %8.4f s  speedup %5.2fx  (page word-sums %s)\n",
      n, ring_p, ring.legacy_seconds, ring.zero_copy_seconds,
      ring.legacy_seconds / ring.zero_copy_seconds,
      ring.checksum_legacy == ring.checksum_zero_copy ? "match" : "DIFFER");

  // Equivalence: the rebuilt transport must not change mining output.
  std::string equivalence_detail;
  const bool identical =
      MiningOutputsIdentical(db, smoke ? 4 : 8, &equivalence_detail);
  std::printf("mining equivalence vs serial: %s\n",
              equivalence_detail.c_str());

  std::string json = "{\n";
  json += "  \"workload\": \"T10.I4.D" + std::to_string(n) + "\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"forward_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    AppendSweepJson(&json, sweep[i]);
    json += i + 1 < sweep.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"ring_shift\": {\"transactions\": %zu, \"p\": %d, "
      "\"page_bytes\": %zu,\n"
      "   \"legacy_seconds\": %.6f, \"zero_copy_seconds\": %.6f, "
      "\"speedup\": %.3f,\n"
      "   \"processed_identical\": %s},\n",
      ring.transactions, ring.p, ring.page_bytes, ring.legacy_seconds,
      ring.zero_copy_seconds, ring.legacy_seconds / ring.zero_copy_seconds,
      ring.checksum_legacy == ring.checksum_zero_copy ? "true" : "false");
  json += buf;
  json += "  \"mining_output_identical\": " +
          std::string(identical ? "true" : "false") + "\n}\n";

  std::FILE* f = std::fopen("BENCH_comm.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_comm.json\n");
  }

  if (!identical || ring.checksum_legacy != ring.checksum_zero_copy) {
    std::printf("FAIL: outputs differ\n");
    return 1;
  }
  return 0;
}
