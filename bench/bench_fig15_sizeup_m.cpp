// Figure 15 reproduction: response time as the candidate count grows
// (0.7M -> 8M in the paper) with N and P fixed (N = 1.3M, P = 64). The
// paper grows M by lowering the minimum support and lets HD's grid adapt
// (8x8 -> 16x4 -> 32x2 -> 64x1); CD partitions its hash tree once M
// exceeds one node's memory.
//
// Expected shape (paper): CD's O(M) hash-tree construction makes it grow
// fastest; IDD starts worse than CD (data movement) but overtakes it as M
// grows; HD tracks the better of the two and matches IDD exactly once the
// grid reaches G = P.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Response time vs number of candidates (pass 3 only)",
                "Figure 15 (M = 0.7M..8M, N = 1.3M, P = 64; HD grid adapts "
                "to 64x1)");

  const int p = 16;
  const std::size_t n = bench::ScaledN(16000);
  TransactionDatabase db = GenerateQuest(bench::ScaleupWorkload(n));

  // Memory-capped CD, as in the paper (tree partitioned beyond 0.7M).
  MachineModel t3e = MachineModel::CrayT3E();
  const std::size_t capacity = 16000;
  const CostModel model(t3e);

  std::printf("P = %d, N = %zu, CD per-node capacity = %zu candidates\n\n",
              p, db.size(), capacity);
  std::printf("%10s %12s %12s %12s %12s %14s\n", "minsup%", "|C_3|", "CD",
              "IDD", "HD", "(HD grid)");

  for (double minsup : {0.02, 0.015, 0.01, 0.0075, 0.005, 0.0035}) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = minsup;
    cfg.apriori.max_k = 3;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
    cfg.hd_threshold_m = capacity;  // grid adapts with M, as in the paper

    ParallelConfig cd_cfg = cfg;
    cd_cfg.apriori.max_candidates_in_memory = capacity;

    std::size_t m3 = 0;
    double t[3] = {0, 0, 0};
    int rows = 0;
    int cols = 0;
    const Algorithm algs[] = {Algorithm::kCD, Algorithm::kIDD,
                              Algorithm::kHD};
    for (int a = 0; a < 3; ++a) {
      const ParallelConfig& use = algs[a] == Algorithm::kCD ? cd_cfg : cfg;
      MiningReport result = bench::Mine(algs[a], db, p, use);
      for (int pass = 0; pass < result.metrics.num_passes(); ++pass) {
        const auto& row =
            result.metrics.per_pass[static_cast<std::size_t>(pass)];
        if (row[0].k == 3) {
          t[a] = model.PassTime(algs[a], row).Total();
          m3 = row[0].num_candidates_global;
          if (algs[a] == Algorithm::kHD) {
            rows = row[0].grid_rows;
            cols = row[0].grid_cols;
          }
        }
      }
    }
    std::printf("%10.4f %12zu %12.3f %12.3f %12.3f %10dx%-3d\n",
                minsup * 100.0, m3, t[0], t[1], t[2], rows, cols);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: CD grows fastest in M; IDD overtakes CD; HD tracks "
      "the winner and equals IDD at G = P.\n");
  return 0;
}
