// Adaptive load balancing on skewed-prefix data (DESIGN.md §14): drives
// IDD at P=8 over a hot-prefix / low-corruption Quest workload — the
// regime where candidate counts misjudge per-candidate cost — and compares
// static-contiguous, static bin-packed, and adaptive (measured-weight)
// partitioning pass by pass. Also records HD's per-pass grid choices with
// the calibrated model vs the static Table-II heuristic. Writes
// BENCH_balance.json (the committed copy lives at the repo root) and exits
// non-zero if any variant's mined output diverges from the serial
// reference — the balancer must never buy balance with wrong counts.
//
//   --smoke   tiny workload, exactness + JSON shape only (CI gate)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "pam/core/serial_apriori.h"

namespace {

using namespace pam;

struct Variant {
  const char* name;
  PrefixStrategy strategy;
  bool adaptive;
};

struct PassRow {
  int k = 0;
  double max = 0.0;
  double mean = 0.0;
};

struct VariantResult {
  std::string name;
  std::vector<PassRow> passes;
  double total_max = 0.0;
  double total_mean = 0.0;
  double wall_seconds = 0.0;
  double modeled_seconds = 0.0;
  std::uint64_t rebalanced_candidates = 0;
  std::uint64_t balance_sync_words = 0;
  bool exact = false;

  double TotalImbalance() const {
    return total_mean > 0.0 ? total_max / total_mean : 1.0;
  }
};

// The skewed-prefix scenario: a 40-item hot prefix absorbing 30% of item
// draws piles candidates onto few first items, and low pattern corruption
// keeps structured (cheap, rarely-visited) candidate runs alive deep into
// the passes alongside the dense hot block — so equal candidate counts
// hide persistently unequal per-candidate costs, which is exactly what
// the measured densities recover.
QuestConfig SkewedWorkload(std::size_t n) {
  QuestConfig q;
  q.num_transactions = n;
  q.num_items = 2000;
  q.avg_transaction_len = 16;
  q.avg_pattern_len = 6;
  q.num_patterns = 80;
  q.corruption_mean = 0.15;
  q.hot_items = 40;
  q.hot_item_mass = 0.3;
  q.seed = 7;
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::Banner("adaptive load balancing (skewed prefix)",
                "ROADMAP item 3 / DESIGN.md §14: measured-weight "
                "repartitioning vs static bin packing");

  const int p = 8;
  const double minsup = 0.01;
  const std::size_t n = smoke ? 800 : bench::ScaledN(4000);
  const TransactionDatabase db = GenerateQuest(SkewedWorkload(n));
  const CostModel model(MachineModel::CrayT3E());

  AprioriConfig serial_cfg;
  serial_cfg.minsup_fraction = minsup;
  const SerialResult serial = MineSerial(db, serial_cfg);

  const Variant variants[] = {
      {"static-contiguous", PrefixStrategy::kContiguous, false},
      {"static-binpack", PrefixStrategy::kBinPacked, false},
      {"adaptive", PrefixStrategy::kBinPacked, true},
  };

  std::printf("P = %d, N = %zu, items = 2000, minsup = %.2f%%, "
              "hot prefix 40 @ 30%%\n\n",
              p, db.size(), minsup * 100.0);

  std::vector<VariantResult> results;
  bool all_exact = true;
  for (const Variant& v : variants) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = minsup;
    cfg.prefix_strategy = v.strategy;
    cfg.adaptive_balance = v.adaptive;

    // Counters and digests are deterministic across repetitions; wall time
    // is not (the rank threads time-slice the host cores), so report the
    // best of a few runs per variant.
    const int reps = smoke ? 1 : 3;
    MiningReport report = bench::Mine(Algorithm::kIDD, db, p, cfg);
    double best_wall = report.wall_seconds;
    for (int rep = 1; rep < reps; ++rep) {
      const MiningReport again = bench::Mine(Algorithm::kIDD, db, p, cfg);
      best_wall = std::min(best_wall, again.wall_seconds);
    }
    VariantResult r;
    r.name = v.name;
    r.wall_seconds = best_wall;
    r.modeled_seconds = model.RunTime(Algorithm::kIDD, report.metrics);
    r.exact = bench::SameItemsets(report.frequent, serial.frequent);
    all_exact = all_exact && r.exact;
    // Pass 1 (item counting) and the pass-2 triangle have no hash tree and
    // no partition to balance; the imbalance story is the tree passes.
    for (int pass = 1; pass < report.metrics.num_passes(); ++pass) {
      const LoadSummary s = report.metrics.SubsetWorkBalance(pass);
      if (s.mean <= 0.0) continue;
      PassRow row;
      row.k = report.metrics.per_pass[static_cast<std::size_t>(pass)][0].k;
      row.max = s.max;
      row.mean = s.mean;
      r.passes.push_back(row);
      r.total_max += s.max;
      r.total_mean += s.mean;
    }
    for (const auto& pass : report.metrics.per_pass) {
      r.rebalanced_candidates += pass[0].rebalanced_candidates;
      r.balance_sync_words += pass[0].balance_sync_words;
    }
    results.push_back(std::move(r));
  }

  std::printf("%-20s %12s %12s %10s %12s %8s\n", "variant", "imbalance",
              "excess", "wall (s)", "T3E (s)", "exact");
  const double static_excess =
      results[1].TotalImbalance() - 1.0;  // static-binpack baseline
  double adaptive_excess_cut = 0.0;
  for (const VariantResult& r : results) {
    const double excess = r.TotalImbalance() - 1.0;
    std::printf("%-20s %12.3f %11.1f%% %10.3f %12.3f %8s\n", r.name.c_str(),
                r.TotalImbalance(), excess * 100.0, r.wall_seconds,
                r.modeled_seconds, r.exact ? "yes" : "NO");
  }
  if (static_excess > 0.0) {
    adaptive_excess_cut =
        (static_excess - (results[2].TotalImbalance() - 1.0)) / static_excess;
  }
  std::printf("\nadaptive cut of excess imbalance vs static-binpack: %.1f%% "
              "(%llu candidates repartitioned, %llu feedback words)\n",
              adaptive_excess_cut * 100.0,
              static_cast<unsigned long long>(results[2].rebalanced_candidates),
              static_cast<unsigned long long>(results[2].balance_sync_words));

  std::printf("\nper-pass max/mean subset work (static-binpack vs adaptive):\n");
  std::printf("%6s %14s %14s\n", "k", "static", "adaptive");
  for (std::size_t i = 0;
       i < results[1].passes.size() && i < results[2].passes.size(); ++i) {
    const PassRow& s = results[1].passes[i];
    const PassRow& a = results[2].passes[i];
    std::printf("%6d %14.3f %14.3f\n", s.k, s.max / s.mean, a.max / a.mean);
  }

  // HD grid choices: static Table-II heuristic vs the calibrated
  // compute/comm model (both mine exactly; only the grids may differ).
  std::vector<int> static_g;
  std::vector<int> adaptive_g;
  for (bool adaptive : {false, true}) {
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = minsup;
    cfg.adaptive_balance = adaptive;
    cfg.hd_threshold_m = smoke ? 200 : 2000;
    const MiningReport report = bench::Mine(Algorithm::kHD, db, p, cfg);
    all_exact =
        all_exact && bench::SameItemsets(report.frequent, serial.frequent);
    for (const auto& pass : report.metrics.per_pass) {
      (adaptive ? adaptive_g : static_g).push_back(pass[0].grid_rows);
    }
  }
  std::printf("\nHD grid rows per pass: static [");
  for (std::size_t i = 0; i < static_g.size(); ++i) {
    std::printf("%s%d", i > 0 ? " " : "", static_g[i]);
  }
  std::printf("], adaptive [");
  for (std::size_t i = 0; i < adaptive_g.size(); ++i) {
    std::printf("%s%d", i > 0 ? " " : "", adaptive_g[i]);
  }
  std::printf("]\n");

  std::FILE* f = std::fopen("BENCH_balance.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"balance\",\n"
                 "  \"smoke\": %s,\n"
                 "  \"ranks\": %d,\n"
                 "  \"transactions\": %zu,\n"
                 "  \"minsup_fraction\": %.4f,\n"
                 "  \"hot_items\": 40,\n"
                 "  \"hot_item_mass\": 0.3,\n"
                 "  \"variants\": [\n",
                 smoke ? "true" : "false", p, db.size(), minsup);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const VariantResult& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"total_imbalance\": %.4f, "
                   "\"wall_seconds\": %.4f, \"modeled_t3e_seconds\": %.4f, "
                   "\"rebalanced_candidates\": %llu, "
                   "\"balance_sync_words\": %llu, \"exact\": %s,\n"
                   "     \"per_pass\": [",
                   r.name.c_str(), r.TotalImbalance(), r.wall_seconds,
                   r.modeled_seconds,
                   static_cast<unsigned long long>(r.rebalanced_candidates),
                   static_cast<unsigned long long>(r.balance_sync_words),
                   r.exact ? "true" : "false");
      for (std::size_t j = 0; j < r.passes.size(); ++j) {
        const PassRow& row = r.passes[j];
        std::fprintf(f, "%s{\"k\": %d, \"imbalance\": %.4f}",
                     j > 0 ? ", " : "", row.k, row.max / row.mean);
      }
      std::fprintf(f, "]}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"hd_grid_rows\": {\"static\": [");
    for (std::size_t i = 0; i < static_g.size(); ++i) {
      std::fprintf(f, "%s%d", i > 0 ? ", " : "", static_g[i]);
    }
    std::fprintf(f, "], \"adaptive\": [");
    for (std::size_t i = 0; i < adaptive_g.size(); ++i) {
      std::fprintf(f, "%s%d", i > 0 ? ", " : "", adaptive_g[i]);
    }
    std::fprintf(f,
                 "]},\n"
                 "  \"adaptive_excess_imbalance_cut\": %.4f,\n"
                 "  \"adaptive_wall_improved\": %s,\n"
                 "  \"all_exact\": %s\n"
                 "}\n",
                 adaptive_excess_cut,
                 results[2].wall_seconds < results[1].wall_seconds ? "true"
                                                                  : "false",
                 all_exact ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_balance.json\n");
  }

  if (!all_exact) {
    std::printf("FAIL: a variant diverged from the serial reference\n");
    return 1;
  }
  return 0;
}
