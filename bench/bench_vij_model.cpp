// Section IV model validation: the paper's Equation 1 closed form
// V_{i,j} (expected distinct leaves visited for i potential candidates
// and j leaves) against the leaf visits actually measured by the
// instrumented hash tree on real Apriori candidate sets. Also prints the
// DD-vs-IDD prediction of the analysis: V_{C, L/P} vs P * V_{C/P, L/P}.

#include <cstdio>

#include "bench_util.h"
#include "pam/core/apriori_gen.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/model/vij.h"

int main() {
  using namespace pam;
  bench::Banner("V(i,j) distinct-leaf-visit model vs measurement",
                "Section IV, Equations 1-2 and the DD/IDD analysis");

  TransactionDatabase db =
      GenerateQuest(bench::PaperWorkload(bench::ScaledN(4000)));

  // Build a genuine C_2 at a few supports and compare model vs measured.
  std::printf("%10s %10s %10s %12s %14s %14s\n", "minsup%", "|C_k|",
              "leaves", "C (avg)", "V model", "V measured");
  for (double minsup : {0.01, 0.005, 0.0025}) {
    const Count abs_minsup =
        static_cast<Count>(minsup * static_cast<double>(db.size())) + 1;
    std::vector<Count> item_counts = CountItems(db, {0, db.size()});
    ItemsetCollection f1 = MakeF1(item_counts, abs_minsup);
    ItemsetCollection c2 = AprioriGen(f1);
    if (c2.empty()) continue;

    HashTree tree(c2, HashTreeConfig{8, 8});
    std::vector<Count> counts(c2.size(), 0);
    SubsetStats stats;
    for (std::size_t t = 0; t < db.size(); ++t) {
      tree.Subset(db.Transaction(t), std::span<Count>(counts), &stats);
    }
    // Average potential candidates per transaction: the traversal opens
    // one path per (start item, following item) pair that exists in the
    // tree; approximate the paper's C = (I choose 2) from the data.
    const double avg_len = db.AverageLength();
    const double c_avg = BinomialCoefficient(
        static_cast<std::uint64_t>(avg_len + 0.5), 2);
    const double v_model = ExpectedDistinctLeaves(
        c_avg, static_cast<double>(tree.num_leaves()));
    std::printf("%10.4f %10zu %10zu %12.1f %14.2f %14.2f\n", minsup * 100.0,
                c2.size(), tree.num_leaves(), c_avg, v_model,
                stats.AvgLeafVisitsPerTransaction());
  }

  // The analysis behind Figure 11: per-processor leaf-visit totals for DD
  // (V_{C, L/P}) vs IDD (V_{C/P, L/P}) from the closed form.
  std::printf("\nClosed-form DD vs IDD distinct-leaf predictions "
              "(C = 105, L = 512):\n");
  std::printf("%6s %16s %16s %12s\n", "P", "DD V(C,L/P)", "IDD V(C/P,L/P)",
              "ratio");
  const double c = 105.0;
  const double l = 512.0;
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double dd = ExpectedDistinctLeaves(c, l / p);
    const double idd = ExpectedDistinctLeaves(c / p, l / p);
    std::printf("%6.0f %16.2f %16.2f %12.2f\n", p, dd, idd, dd / idd);
  }
  std::printf(
      "\nShape check: measured V within ~2x of the model (the closed form "
      "assumes uniform leaf\nreach; real hash paths are skewed); DD/IDD "
      "ratio grows toward P.\n");
  return 0;
}
