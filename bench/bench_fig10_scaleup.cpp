// Figure 10 reproduction: scaleup on the Cray T3E. Transactions per
// processor and minimum support stay fixed while the processor count
// grows; a scalable formulation keeps a flat response-time curve. The
// paper runs 50K transactions/processor at 0.1% support on up to 128
// processors; this harness runs the same sweep shape at reduced size and
// reports the modeled T3E response time from the exactly measured work
// counts (see DESIGN.md's substitution table).
//
// Expected shape (paper): DD climbs steeply (redundant work + contention),
// DD+comm recovers part of the gap (better communication), IDD more
// (intelligent partitioning), CD and HD stay nearly flat, with HD below CD
// at large P (16.5% at P = 128 in the paper).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace pam;
  bench::Banner("Scaleup: response time vs processors",
                "Figure 10 (50K tx/proc, 0.1% minsup, T3E; curves CD, DD, "
                "DD+comm, IDD, HD)");

  const std::size_t tx_per_rank = bench::ScaledN(400);
  const CostModel model(MachineModel::CrayT3E());
  const Algorithm algorithms[] = {Algorithm::kCD, Algorithm::kDD,
                                  Algorithm::kDDComm, Algorithm::kIDD,
                                  Algorithm::kHD};

  std::printf("%zu transactions per processor, 2%% minimum support\n\n",
              tx_per_rank);
  std::printf("%6s %12s %12s %12s %12s %12s\n", "P", "CD", "DD", "DD+comm",
              "IDD", "HD");

  for (int p : {2, 4, 8, 16, 32, 64}) {
    TransactionDatabase db = GenerateQuest(bench::ScaleupWorkload(
        tx_per_rank * static_cast<std::size_t>(p)));
    ParallelConfig cfg;
    cfg.apriori.minsup_fraction = 0.02;
    cfg.apriori.tree = bench::BenchTreeConfig();
    cfg.apriori.use_pass2_triangle = false;  // instrument pass 2 via the tree
    cfg.hd_threshold_m = 2000;  // scaled analogue of the paper's threshold

    std::printf("%6d", p);
    for (Algorithm alg : algorithms) {
      MiningReport result = bench::Mine(alg, db, p, cfg);
      std::printf(" %12.3f", model.RunTime(alg, result.metrics));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: DD >> DD+comm > IDD; CD and HD flat, HD <= CD at "
      "large P.\n");
  return 0;
}
