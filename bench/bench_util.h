#ifndef PAM_BENCH_BENCH_UTIL_H_
#define PAM_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table reproduction harnesses. Every bench
// binary prints the series of one table or figure of the paper (see
// DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured).
//
// Scale: the paper's runs use up to 26M transactions and 8M candidates on
// a 128-processor Cray T3E; these harnesses default to workloads that
// finish in seconds on one host core and preserve the N/M/P *ratios*. Set
// PAM_BENCH_SCALE=<float> to grow or shrink every workload proportionally.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "pam/api/session.h"
#include "pam/datagen/quest_gen.h"
#include "pam/model/cost_model.h"

namespace pam::bench {

/// Runs one parallel formulation through the MiningSession facade — the
/// public entry point every harness exercises. No observers are attached,
/// so this is the zero-overhead path; MiningReport's field names mirror
/// the legacy ParallelResult's (frequent / metrics / minsup_count /
/// wall_seconds) and the figure code reads the same.
inline MiningReport Mine(Algorithm algorithm, const TransactionDatabase& db,
                         int num_ranks, const ParallelConfig& config) {
  MiningRequest request;
  request.algorithm = FromParallelAlgorithm(algorithm);
  request.num_ranks = num_ranks;
  request.config = config;
  MiningSession session;
  return session.Run(request, db);
}

/// True if two mining results hold exactly the same itemsets with the same
/// counts (used by the fault-recovery bench to certify exactness).
inline bool SameItemsets(const FrequentItemsets& a,
                         const FrequentItemsets& b) {
  if (a.levels.size() != b.levels.size()) return false;
  for (std::size_t l = 0; l < a.levels.size(); ++l) {
    const auto& la = a.levels[l];
    const auto& lb = b.levels[l];
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i) {
      ItemSpan sa = la.Get(i);
      ItemSpan sb = lb.Get(i);
      if (la.count(i) != lb.count(i) || sa.size() != sb.size() ||
          !std::equal(sa.begin(), sa.end(), sb.begin())) {
        return false;
      }
    }
  }
  return true;
}

/// Multiplier from the PAM_BENCH_SCALE environment variable (default 1.0).
inline double Scale() {
  const char* env = std::getenv("PAM_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

/// Scaled transaction count.
inline std::size_t ScaledN(std::size_t base) {
  return static_cast<std::size_t>(static_cast<double>(base) * Scale());
}

/// The paper's T15.I6-family workload at a given size. All figure benches
/// share these generator statistics so candidate growth behaves like the
/// paper's dataset as minsup drops.
inline QuestConfig PaperWorkload(std::size_t num_transactions,
                                 std::uint64_t seed = 1997) {
  QuestConfig q;
  q.num_transactions = num_transactions;
  q.num_items = 1000;
  q.avg_transaction_len = 15;
  q.avg_pattern_len = 6;
  q.num_patterns = 400;
  q.seed = seed;
  return q;
}

/// The scaleup workload of Figure 10: like PaperWorkload but with a more
/// concentrated pattern pool so that, at bench scale, the candidate count
/// stays small relative to N (the paper's scaleup runs are in the
/// N-dominated regime: 50K transactions per processor vs 351K peak
/// candidates across the whole machine).
inline QuestConfig ScaleupWorkload(std::size_t num_transactions,
                                   std::uint64_t seed = 1997) {
  QuestConfig q = PaperWorkload(num_transactions, seed);
  q.num_patterns = 40;
  return q;
}

/// Hash tree shape used by the figure benches: a wide fanout keeps the
/// number of distinct hash paths (fanout^k) well above the candidate
/// count, so leaves stay near the target occupancy S — the paper tunes
/// the branching factor the same way. (With a narrow fanout the depth-k
/// paths saturate and the full tree's leaves chain far past capacity,
/// which spuriously inflates CD's checking work relative to the
/// partitioned trees.)
inline HashTreeConfig BenchTreeConfig() {
  HashTreeConfig tree;
  tree.fanout = 64;
  tree.leaf_capacity = 8;
  return tree;
}

/// Header banner for a harness.
inline void Banner(const std::string& what, const std::string& paper_ref) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Scale factor: %.2f (set PAM_BENCH_SCALE to change)\n\n",
              Scale());
}

}  // namespace pam::bench

#endif  // PAM_BENCH_BENCH_UTIL_H_
