// Micro benchmarks (google-benchmark) for the core data structures: hash
// tree construction and subset counting, apriori_gen, the synthetic data
// generator, bin packing, and the message-passing ring shift.
//
// Unless an explicit --benchmark_out is given, results are also written as
// machine-readable JSON to BENCH_micro.json in the working directory.

#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "pam/core/apriori_gen.h"
#include "pam/core/candidate_partition.h"
#include "pam/datagen/quest_gen.h"
#include "pam/hashtree/hash_tree.h"
#include "pam/mp/runtime.h"
#include "pam/parallel/common.h"
#include "pam/sim/network_sim.h"
#include "pam/tdb/page_buffer.h"
#include "pam/util/prng.h"

namespace {

using namespace pam;

TransactionDatabase BenchDb(std::size_t n) {
  QuestConfig q;
  q.num_transactions = n;
  q.num_items = 500;
  q.avg_transaction_len = 12;
  q.avg_pattern_len = 4;
  q.num_patterns = 150;
  q.seed = 7;
  return GenerateQuest(q);
}

// C_2 candidate set of roughly the requested size.
ItemsetCollection BenchCandidates(const TransactionDatabase& db,
                                  std::size_t target) {
  std::vector<Count> counts = CountItems(db, {0, db.size()});
  // Binary-search a minsup that yields >= target candidates.
  Count lo = 1;
  Count hi = db.size();
  ItemsetCollection best(2);
  while (lo < hi) {
    const Count mid = lo + (hi - lo) / 2;
    ItemsetCollection f1 = MakeF1(counts, mid);
    ItemsetCollection c2 = AprioriGen(f1);
    if (c2.size() >= target) {
      best = std::move(c2);
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (best.empty()) {
    ItemsetCollection f1 = MakeF1(counts, 1);
    best = AprioriGen(f1);
  }
  return best;
}

void BM_HashTreeBuild(benchmark::State& state) {
  TransactionDatabase db = BenchDb(2000);
  ItemsetCollection candidates =
      BenchCandidates(db, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    HashTree tree(candidates, HashTreeConfig{8, 16});
    benchmark::DoNotOptimize(tree.num_leaves());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(candidates.size()));
}
BENCHMARK(BM_HashTreeBuild)->Arg(1000)->Arg(10000);

void BM_SubsetCounting(benchmark::State& state) {
  TransactionDatabase db = BenchDb(2000);
  ItemsetCollection candidates =
      BenchCandidates(db, static_cast<std::size_t>(state.range(0)));
  HashTree tree(candidates, HashTreeConfig{8, 16});
  std::vector<Count> counts(candidates.size(), 0);
  std::size_t t = 0;
  for (auto _ : state) {
    tree.Subset(db.Transaction(t), std::span<Count>(counts), nullptr);
    t = (t + 1) % db.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubsetCounting)->Arg(1000)->Arg(10000);

void BM_SubsetCountingWithBitmap(benchmark::State& state) {
  TransactionDatabase db = BenchDb(2000);
  ItemsetCollection candidates = BenchCandidates(db, 10000);
  CandidatePartition partition = PartitionByPrefix(
      candidates, db.NumItems(), 8, PrefixStrategy::kBinPacked);
  HashTree tree(candidates, partition.ids_per_part[0], HashTreeConfig{8, 16});
  std::vector<Count> counts(candidates.size(), 0);
  std::size_t t = 0;
  for (auto _ : state) {
    tree.Subset(db.Transaction(t), std::span<Count>(counts), nullptr,
                &partition.first_item_filter[0]);
    t = (t + 1) % db.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubsetCountingWithBitmap);

void BM_AprioriGen(benchmark::State& state) {
  TransactionDatabase db = BenchDb(2000);
  std::vector<Count> counts = CountItems(db, {0, db.size()});
  ItemsetCollection f1 = MakeF1(counts, static_cast<Count>(state.range(0)));
  for (auto _ : state) {
    ItemsetCollection c2 = AprioriGen(f1);
    benchmark::DoNotOptimize(c2.size());
  }
}
BENCHMARK(BM_AprioriGen)->Arg(20)->Arg(5);

void BM_QuestGenerate(benchmark::State& state) {
  for (auto _ : state) {
    QuestConfig q;
    q.num_transactions = static_cast<std::size_t>(state.range(0));
    q.seed = 3;
    TransactionDatabase db = GenerateQuest(q);
    benchmark::DoNotOptimize(db.TotalItems());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_QuestGenerate)->Arg(1000)->Arg(10000);

void BM_BinPacking(benchmark::State& state) {
  Prng rng(5);
  std::vector<std::uint64_t> weights(
      static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = 1 + rng.NextBounded(1000);
  for (auto _ : state) {
    BinPackingResult r = PackBins(weights, 64);
    benchmark::DoNotOptimize(r.bin_weight[0]);
  }
}
BENCHMARK(BM_BinPacking)->Arg(1000)->Arg(100000);

void BM_RingShift(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  TransactionDatabase db = BenchDb(400);
  for (auto _ : state) {
    Runtime rt(p);
    std::atomic<std::uint64_t> total{0};
    rt.Run([&db, &total](Comm& comm) {
      const auto slice = db.RankSlice(comm.rank(), comm.size());
      const std::vector<Page> pages = Paginate(db, slice, 4096);
      std::uint64_t local = 0;
      parallel_internal::RingShiftAll(
          comm, pages,
          [&local](PageView page) { local += page.size(); }, nullptr);
      total += local;
    });
    benchmark::DoNotOptimize(total.load());
  }
}
BENCHMARK(BM_RingShift)->Arg(2)->Arg(8);

void BM_AllReduce(benchmark::State& state) {
  const int p = 8;
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Runtime rt(p);
    rt.Run([words](Comm& comm) {
      std::vector<std::uint64_t> data(words, 1);
      comm.AllReduceSum(std::span<std::uint64_t>(data));
    });
  }
}
BENCHMARK(BM_AllReduce)->Arg(1024)->Arg(65536);

void BM_NetworkSimAllToAll(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  NetworkSimulator sim(p, Topology::kTorus3D, 300e6, 16e-6);
  const auto messages = NetworkSimulator::AllToAll(p, 16 * 1024);
  for (auto _ : state) {
    SimResult r = sim.Run(messages);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(messages.size()));
}
BENCHMARK(BM_NetworkSimAllToAll)->Arg(16)->Arg(64);

void BM_PairBucketCounting(benchmark::State& state) {
  TransactionDatabase db = BenchDb(1000);
  for (auto _ : state) {
    std::vector<Count> buckets =
        CountPairBuckets(db, {0, db.size()}, 1 << 16);
    benchmark::DoNotOptimize(buckets[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(db.size()));
}
BENCHMARK(BM_PairBucketCounting);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // Default to a JSON sidecar file so scripted runs get parseable output;
  // an explicit --benchmark_out on the command line wins.
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
