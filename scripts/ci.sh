#!/usr/bin/env bash
# CI gate: build and run the full test suite under both an optimized
# Release configuration (-O3 -DNDEBUG, warnings as errors) and an
# ASan/UBSan debug configuration. Uses the presets in CMakePresets.json.
#
#   scripts/ci.sh [release|sanitize]   (default: both)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

run_preset() {
  local preset="$1"
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset"
  ctest --preset "$preset"
}

case "${1:-all}" in
  release) run_preset release ;;
  sanitize) run_preset sanitize ;;
  all)
    run_preset release
    run_preset sanitize
    ;;
  *)
    echo "usage: scripts/ci.sh [release|sanitize]" >&2
    exit 2
    ;;
esac
