#!/usr/bin/env bash
# CI gate: build and run the full test suite under both an optimized
# Release configuration (-O3 -DNDEBUG, warnings as errors) and an
# ASan/UBSan debug configuration. Uses the presets in CMakePresets.json.
#
# Every ctest invocation carries a hard per-test timeout so a hung test
# (e.g. a deadlocked rank in the message-passing substrate) fails the
# gate instead of wedging CI. The chaos suite (ctest label `chaos`:
# mining under an intentionally faulty transport) additionally gets a
# dedicated pass under the sanitizers, where the fault-recovery paths
# are most likely to expose lifetime or data-race bugs.
#
# The tsan job builds under ThreadSanitizer and runs the suites that
# exercise real threads: the intra-rank counting team differentials
# (label `threaded`), the chaos matrix (rank threads + counting workers
# over a faulty transport), the mining-server suite (label `serve`:
# concurrent tenants over a shared rank pool and dataset cache), and the
# adaptive load-balancing suite (label `balance`: per-pass repartitioning
# decisions folded from worker-attributed counters, where a data race
# would silently desynchronize the ranks' partitions).
#
#   scripts/ci.sh [release|sanitize|tsan]   (default: all)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

# Upper bound for any single test; generous because the sanitize preset
# runs the mining matrices several times slower than release.
test_timeout=300

run_preset() {
  local preset="$1"
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset"
  ctest --preset "$preset" --timeout "$test_timeout"
}

# The serve label includes the cancellation chaos matrix
# (serve_cancel_test): the server driven under stall and drop fault plans
# with deadlines, asserting every response is typed and every rank lease
# comes home. It runs under both sanitizers — ASan for the unwind paths
# (a cancelled run tears down mid-pass), TSan for the token/watchdog
# concurrency.
run_chaos_sanitized() {
  echo "=== chaos + serve + balance suites under ASan/UBSan ==="
  ctest --preset sanitize -L 'chaos|serve|balance' --timeout "$test_timeout"
}

run_tsan() {
  echo "=== threaded + chaos + serve + balance suites under TSan ==="
  cmake --preset tsan
  cmake --build --preset tsan
  ctest --preset tsan -L 'threaded|chaos|serve|balance' --timeout "$test_timeout"
}

# Smoke pass of the transport benchmark: exercises the zero-copy vs
# copy-per-hop comparison end to end (including the cross-formulation
# mining-equivalence check, which exits non-zero on any mismatch).
run_bench_comm_smoke() {
  echo "=== bench_comm smoke ==="
  (cd build-release/bench && ./bench_comm --smoke)
}

# Smoke pass of the serving benchmark: drives the multi-tenant mining
# server with the mixed-algorithm request mix plus the open-loop overload
# burst (bench_serve exits non-zero if any served result diverges from a
# solo run), then checks the emitted BENCH_serve.json shape.
run_bench_serve_smoke() {
  echo "=== bench_serve smoke ==="
  (cd build-release/bench && ./bench_serve --smoke)
  python3 - build-release/bench/BENCH_serve.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "serve", doc
assert doc["pool_ranks"] > 0 and doc["workers"] > 0
sections = doc["sections"]
assert sections, "no sections"
for s in sections:
    assert s["requests"] > 0 and s["throughput_rps"] > 0, s
    assert 0 < s["p50_ms"] <= s["p95_ms"] <= s["p99_ms"], s
over = doc["overload"]
assert over["submitted"] == over["admitted"] + over["queue_full"] + \
    over["tenant_in_flight"], over
assert over["queue_full"] > 0, "overload burst never filled the queue"
dl = doc["deadline_mix"]
assert dl["tight_requests"] > 0 and 0 < dl["tight_fraction"] <= 1, dl
assert 0 <= dl["shed_rate"] <= 1, dl
assert dl["survivors"] > 0, "deadline mix starved the well-behaved load"
assert 0 < dl["survivor_p95_ms"] <= dl["survivor_p99_ms"], dl
rc = doc["result_cache"]
assert rc["mined"] > 0 and rc["hits"] > 0, rc
assert rc["hot_leases"] == 0, "result-cache hits leased ranks"
assert rc["resident_bytes"] > 0, rc
assert 0 < rc["hot_p50_ms"] <= rc["cold_p50_ms"], \
    "cache hits were not faster than mining"
wf = doc["weighted_fairness"]
assert wf["heavy_weight"] == 3.0 and wf["light_weight"] == 1.0, wf
assert wf["heavy_in_window"] + wf["light_in_window"] == wf["window"], wf
assert wf["ratio"] >= 2.0, \
    f"3:1-weighted tenant got only {wf['ratio']}x the share"
print(f"BENCH_serve.json: {len(sections)} sections, "
      f"{over['queue_full']} queue-full rejections, "
      f"deadline shed rate {dl['shed_rate']:.2f}, "
      f"cache speedup {rc['speedup']:.0f}x, "
      f"fairness ratio {wf['ratio']:.1f}: ok")
PYEOF
}

# Loopback smoke of the networked front-end (DESIGN.md §15): pam_serve in
# --listen mode on an ephemeral port, driven by pam_client over TCP with
# every algorithm in the mix plus a stats poll, then a remote shutdown.
# Checks both exit codes: the client's (all responses ok) and the
# daemon's (clean drain on the shutdown frame).
run_serve_net_smoke() {
  echo "=== pam_serve --listen / pam_client loopback smoke ==="
  local tools="build-release/tools"
  local scratch="build-release/serve_net_smoke"
  mkdir -p "$scratch"
  "$tools/pam_gen" --transactions 800 --items 100 --avg-len 8 \
    --pattern-len 3 --patterns 40 --seed 7 --output "$scratch/smoke.bin"
  cat > "$scratch/requests.txt" <<'EOF'
mine id=r1 tenant=acme dataset=smoke algorithm=serial minsup=2
mine id=r2 tenant=acme dataset=smoke algorithm=cd ranks=4 minsup=2
mine id=r3 tenant=beta dataset=smoke algorithm=dd ranks=3 minsup=2
mine id=r4 tenant=beta dataset=smoke algorithm=idd ranks=4 minsup=2
mine id=r5 tenant=gamma dataset=smoke algorithm=hd ranks=4 minsup=2
mine id=r6 tenant=gamma dataset=smoke algorithm=hpa ranks=3 minsup=2 rules
stats
shutdown
EOF
  rm -f "$scratch/port"
  "$tools/pam_serve" --datasets "smoke=$scratch/smoke.bin" --listen \
    --port-file "$scratch/port" --allow-shutdown --result-cache &
  local server_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$scratch/port" ] && break
    sleep 0.1
  done
  [ -s "$scratch/port" ] || { echo "server never wrote its port"; exit 1; }
  "$tools/pam_client" --port-file "$scratch/port" \
    --script "$scratch/requests.txt"
  wait "$server_pid"
  echo "loopback smoke: client and daemon both exited clean"
}

# Smoke pass of the load-balancing benchmark: static vs adaptive IDD on a
# tiny skewed-prefix workload (bench_balance exits non-zero if any variant
# diverges from the serial reference), then checks the emitted
# BENCH_balance.json shape. The imbalance-reduction numbers only mean
# something at full size, so the smoke gate checks exactness and shape.
run_bench_balance_smoke() {
  echo "=== bench_balance smoke ==="
  (cd build-release/bench && ./bench_balance --smoke)
  python3 - build-release/bench/BENCH_balance.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["bench"] == "balance", doc
assert doc["smoke"] is True and doc["ranks"] > 0, doc
assert doc["all_exact"] is True, "a variant diverged from serial"
variants = {v["name"]: v for v in doc["variants"]}
assert set(variants) == {"static-contiguous", "static-binpack", "adaptive"}
for v in variants.values():
    assert v["exact"] is True and v["total_imbalance"] >= 1.0, v
    assert v["per_pass"], f"{v['name']}: no tree passes"
assert variants["adaptive"]["rebalanced_candidates"] > 0, \
    "adaptive run never repartitioned"
assert variants["adaptive"]["balance_sync_words"] > 0, \
    "adaptive run never paid for feedback"
for key in ("static-contiguous", "static-binpack"):
    assert variants[key]["rebalanced_candidates"] == 0, variants[key]
grids = doc["hd_grid_rows"]
assert grids["static"] and grids["adaptive"], grids
print(f"BENCH_balance.json: {len(variants)} variants, "
      f"{variants['adaptive']['rebalanced_candidates']} candidates "
      f"repartitioned: ok")
PYEOF
}

# One traced P=4 mining run per formulation through the MiningSession CLI
# path: pam_mine must produce a chrome://tracing document and a metrics
# document that parse as JSON and carry the expected top-level structure.
run_traced_smoke() {
  echo "=== traced mining smoke (all formulations) ==="
  local tools="build-release/tools"
  local scratch="build-release/traced_smoke"
  mkdir -p "$scratch"
  "$tools/pam_gen" --transactions 800 --items 100 --avg-len 8 \
    --pattern-len 3 --patterns 40 --seed 7 --output "$scratch/smoke.bin"
  for alg in serial cd dd ddcomm idd hd hpa; do
    echo "--- $alg ---"
    "$tools/pam_mine" --input "$scratch/smoke.bin" --minsup 2 \
      --algorithm "$alg" --ranks 4 \
      --trace-out "$scratch/$alg.trace.json" \
      --metrics-out "$scratch/$alg.metrics.json" > /dev/null
    python3 - "$scratch/$alg.trace.json" "$scratch/$alg.metrics.json" \
      "$alg" <<'PYEOF'
import json, sys
trace_path, metrics_path, alg = sys.argv[1:4]
with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, f"{alg}: no complete events in trace"
kinds = {e["cat"] for e in spans}
assert {"run", "pass"} <= kinds, f"{alg}: missing run/pass spans: {kinds}"
with open(metrics_path) as f:
    metrics = json.load(f)
assert metrics["algorithm"], f"{alg}: metrics missing algorithm"
assert metrics["complete"] is True, f"{alg}: metrics run did not complete"
assert metrics["passes"], f"{alg}: metrics missing passes"
print(f"{alg}: {len(spans)} spans, {len(metrics['passes'])} passes: ok")
PYEOF
  done
}

case "${1:-all}" in
  release)
    run_preset release
    run_bench_comm_smoke
    run_bench_serve_smoke
    run_bench_balance_smoke
    run_traced_smoke
    run_serve_net_smoke
    ;;
  sanitize)
    run_preset sanitize
    run_chaos_sanitized
    ;;
  tsan)
    run_tsan
    ;;
  all)
    run_preset release
    run_bench_comm_smoke
    run_bench_serve_smoke
    run_bench_balance_smoke
    run_traced_smoke
    run_serve_net_smoke
    run_preset sanitize
    run_chaos_sanitized
    run_tsan
    ;;
  *)
    echo "usage: scripts/ci.sh [release|sanitize|tsan]" >&2
    exit 2
    ;;
esac
