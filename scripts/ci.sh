#!/usr/bin/env bash
# CI gate: build and run the full test suite under both an optimized
# Release configuration (-O3 -DNDEBUG, warnings as errors) and an
# ASan/UBSan debug configuration. Uses the presets in CMakePresets.json.
#
# Every ctest invocation carries a hard per-test timeout so a hung test
# (e.g. a deadlocked rank in the message-passing substrate) fails the
# gate instead of wedging CI. The chaos suite (ctest label `chaos`:
# mining under an intentionally faulty transport) additionally gets a
# dedicated pass under the sanitizers, where the fault-recovery paths
# are most likely to expose lifetime or data-race bugs.
#
#   scripts/ci.sh [release|sanitize]   (default: both)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

# Upper bound for any single test; generous because the sanitize preset
# runs the mining matrices several times slower than release.
test_timeout=300

run_preset() {
  local preset="$1"
  echo "=== preset: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset"
  ctest --preset "$preset" --timeout "$test_timeout"
}

run_chaos_sanitized() {
  echo "=== chaos suite under ASan/UBSan ==="
  ctest --preset sanitize -L chaos --timeout "$test_timeout"
}

# Smoke pass of the transport benchmark: exercises the zero-copy vs
# copy-per-hop comparison end to end (including the cross-formulation
# mining-equivalence check, which exits non-zero on any mismatch).
run_bench_comm_smoke() {
  echo "=== bench_comm smoke ==="
  (cd build-release/bench && ./bench_comm --smoke)
}

case "${1:-all}" in
  release)
    run_preset release
    run_bench_comm_smoke
    ;;
  sanitize)
    run_preset sanitize
    run_chaos_sanitized
    ;;
  all)
    run_preset release
    run_bench_comm_smoke
    run_preset sanitize
    run_chaos_sanitized
    ;;
  *)
    echo "usage: scripts/ci.sh [release|sanitize]" >&2
    exit 2
    ;;
esac
