#!/usr/bin/env bash
# Full repository check: configure, build (warnings as errors), run the
# test suite, and regenerate every table/figure harness.
#
#   scripts/check.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -G Ninja -DPAM_WERROR=ON "$repo"
cmake --build "$build"
ctest --test-dir "$build" --output-on-failure

for b in "$build"/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "--- $(basename "$b") ---"
    "$b"
  fi
done
