// pam_mine: mine frequent itemsets and association rules from a basket
// file with any of the six supported formulations (serial, CD, DD,
// DD+comm, IDD, HD, HPA).
//
//   pam_mine --input t15i6.bin --minsup 0.5 --minconf 70
//            --algorithm hd --ranks 8 --rules --top 20
//
// The input may be the binary format of pam_gen or a whitespace text
// basket file (--format text).

#include <cstdio>
#include <cstring>
#include <string>

#include "pam/api/session.h"
#include "pam/core/itemsets_io.h"
#include "pam/core/maximal.h"
#include "pam/model/cost_model.h"
#include "pam/model/explain.h"
#include "pam/mp/fault.h"
#include "pam/obs/chrome_trace.h"
#include "pam/obs/json_metrics.h"
#include "pam/tdb/db_stats.h"
#include "pam/tdb/io.h"
#include "pam/util/flags.h"

namespace {

constexpr const char* kUsage = R"(usage: pam_mine [flags]
  --input PATH       basket file (required)
  --format FMT       binary | text (default binary)
  --minsup PCT       minimum support percent (default 1.0)
  --minconf PCT      minimum confidence percent for rules (default 50)
  --algorithm ALG    serial | cd | dd | ddcomm | idd | hd | hpa
                     (default serial)
  --ranks P          logical processors for parallel algorithms (default 4)
  --threads-per-rank T
                     intra-rank counting team size (default 1 = serial
                     counting; results are identical for every T)
  --hd-threshold M   HD candidate threshold m (default 50000)
  --adaptive-balance rebalance IDD's candidate partition between passes
                     from measured per-rank work and pick HD's G from the
                     measured compute/comm ratio (results are identical)
  --max-k K          stop after pass K (default: run to completion)
  --rules            also generate association rules
  --top N            print at most N itemsets/rules (default 20)
  --machine NAME     t3e | sp2: also print the modeled response time
  --dhp N            enable the DHP pair-hash filter with N buckets
  --explain          print the per-pass cost breakdown (needs --machine)
  --stats            print database statistics before mining
  --maximal          print only maximal frequent itemsets
  --save-itemsets F  persist mined frequent itemsets to F
  --fault-kind K     inject transport faults (parallel algorithms only):
                     corrupt | truncate | duplicate | drop | reorder |
                     stall | mixed
  --fault-rate R     per-delivery-attempt fault probability (default 0.05)
  --fault-seed S     fault schedule seed (default 1; same seed = same faults)
  --fault-retries N  retransmit budget per message (default 3)
  --fault-timeout MS receive deadline in ms under faults (default 5000)
  --trace-out F      write a chrome://tracing span timeline of the run to F
                     (Trace Event Format JSON; one track per rank)
  --metrics-out F    write the per-pass, per-rank work/traffic counters of
                     the run to F as JSON
)";

bool ParseFaultKind(const std::string& name, pam::FaultKind* out) {
  if (name == "corrupt") *out = pam::FaultKind::kCorrupt;
  else if (name == "truncate") *out = pam::FaultKind::kTruncate;
  else if (name == "duplicate") *out = pam::FaultKind::kDuplicate;
  else if (name == "drop") *out = pam::FaultKind::kDrop;
  else if (name == "reorder") *out = pam::FaultKind::kReorder;
  else if (name == "stall") *out = pam::FaultKind::kStall;
  else return false;
  return true;
}

void PrintItemsets(const pam::FrequentItemsets& frequent, std::size_t n,
                   std::size_t top) {
  std::printf("frequent itemsets: %zu (largest size %d)\n",
              frequent.TotalCount(), frequent.MaxK());
  std::size_t printed = 0;
  for (const auto& level : frequent.levels) {
    for (std::size_t i = 0; i < level.size() && printed < top;
         ++i, ++printed) {
      pam::ItemSpan s = level.Get(i);
      std::printf("  {");
      for (std::size_t j = 0; j < s.size(); ++j) {
        std::printf(j ? " %u" : "%u", s[j]);
      }
      std::printf("}  support %.3f%% (%llu)\n",
                  100.0 * static_cast<double>(level.count(i)) /
                      static_cast<double>(n),
                  static_cast<unsigned long long>(level.count(i)));
    }
  }
  if (printed < frequent.TotalCount()) {
    std::printf("  ... (%zu more)\n", frequent.TotalCount() - printed);
  }
}

}  // namespace

int main(int argc, char** argv) {
  pam::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(), kUsage);
    return 2;
  }
  const std::vector<std::string> known = {
      "input",   "format",  "minsup",  "minconf",       "algorithm",
      "ranks",   "rules",   "top",     "max-k",         "hd-threshold",
      "machine", "explain", "stats",   "maximal",       "save-itemsets",
      "dhp",     "help",    "fault-kind", "fault-rate",  "fault-seed",
      "fault-retries", "fault-timeout", "trace-out", "metrics-out",
      "threads-per-rank", "adaptive-balance"};
  for (const std::string& f : flags.UnknownFlags(known)) {
    std::fprintf(stderr, "error: unknown flag --%s\n%s", f.c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("input")) {
    std::fputs(kUsage, flags.Has("input") ? stdout : stderr);
    return flags.GetBool("help", false) ? 0 : 2;
  }

  const std::string path = flags.GetString("input", "");
  const std::string format = flags.GetString("format", "binary");
  pam::Result<pam::TransactionDatabase> loaded =
      format == "text" ? pam::ReadText(path) : pam::ReadBinary(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  const pam::TransactionDatabase& db = loaded.value();
  std::printf("loaded %zu transactions, %zu items, avg length %.2f\n",
              db.size(), static_cast<std::size_t>(db.NumItems()),
              db.AverageLength());
  if (flags.GetBool("stats", false)) {
    std::printf("%s", pam::ComputeDbStats(db).ToString().c_str());
  }

  pam::ParallelConfig config;
  config.apriori.minsup_fraction = flags.GetDouble("minsup", 1.0) / 100.0;
  config.apriori.max_k = static_cast<int>(flags.GetInt("max-k", 0));
  config.hd_threshold_m =
      static_cast<std::size_t>(flags.GetInt("hd-threshold", 50000));
  config.adaptive_balance = flags.GetBool("adaptive-balance", false);
  config.apriori.dhp_buckets =
      static_cast<std::size_t>(flags.GetInt("dhp", 0));
  config.apriori.threads_per_rank =
      static_cast<int>(flags.GetInt("threads-per-rank", 1));
  const std::size_t top =
      static_cast<std::size_t>(flags.GetInt("top", 20));

  if (flags.Has("fault-kind")) {
    const std::string kind_name = flags.GetString("fault-kind", "");
    const double rate = flags.GetDouble("fault-rate", 0.05);
    const auto seed =
        static_cast<std::uint64_t>(flags.GetInt("fault-seed", 1));
    const int retries = static_cast<int>(flags.GetInt("fault-retries", 3));
    if (kind_name == "mixed") {
      config.fault = pam::FaultConfig::Mixed(rate, seed, retries);
    } else {
      pam::FaultKind kind;
      if (!ParseFaultKind(kind_name, &kind)) {
        std::fprintf(stderr, "error: unknown fault kind '%s'\n%s",
                     kind_name.c_str(), kUsage);
        return 2;
      }
      config.fault = pam::FaultConfig::Uniform(kind, rate, seed, retries);
    }
    config.fault.recv_timeout_ms =
        static_cast<int>(flags.GetInt("fault-timeout", 5000));
  }

  const std::string algorithm_name =
      flags.GetString("algorithm", "serial");
  pam::MiningRequest request;
  if (!pam::ParseMiningAlgorithm(algorithm_name, &request.algorithm)) {
    std::fprintf(stderr, "error: unknown algorithm '%s'\n%s",
                 algorithm_name.c_str(), kUsage);
    return 2;
  }
  request.num_ranks = static_cast<int>(flags.GetInt("ranks", 4));
  request.config = config;
  request.generate_rules = flags.GetBool("rules", false);
  request.min_confidence = flags.GetDouble("minconf", 50.0) / 100.0;

  pam::MiningSession session;
  pam::obs::ChromeTraceWriter trace_writer;
  pam::obs::JsonMetricsWriter metrics_writer;
  if (flags.Has("trace-out")) session.AddTraceSink(&trace_writer);
  if (flags.Has("metrics-out")) session.AddMetricsSink(&metrics_writer);

  pam::MiningReport report;
  try {
    report = session.Run(request, db);
  } catch (const pam::CommError& e) {
    std::fprintf(stderr,
                 "error: transport failure: kind=%s rank=%d peer=%d "
                 "tag=%d\n  %s\n",
                 pam::CommErrorKindName(e.kind()), e.rank(), e.peer(),
                 e.tag(), e.what());
    return 1;
  }
  pam::FrequentItemsets frequent = std::move(report.frequent);
  if (pam::IsParallel(request.algorithm)) {
    std::printf("mined with %s on %d logical ranks in %.2fs wall\n",
                pam::MiningAlgorithmName(request.algorithm).c_str(),
                request.num_ranks, report.wall_seconds);
  } else {
    std::printf("mined serially in %.2fs (minsup count %llu)\n",
                report.wall_seconds,
                static_cast<unsigned long long>(report.minsup_count));
  }
  if (config.fault.enabled && pam::IsParallel(request.algorithm)) {
    std::printf("fault injection: %llu injected, %llu retransmits, "
                "%llu bad envelopes discarded (result verified exact by "
                "framing)\n",
                static_cast<unsigned long long>(
                    report.metrics.TotalFaultsInjected()),
                static_cast<unsigned long long>(
                    report.metrics.TotalCommRetries()),
                static_cast<unsigned long long>(
                    report.metrics.TotalFaultsDetected()));
  }
  if (flags.Has("machine") && pam::IsParallel(request.algorithm)) {
    const pam::Algorithm algorithm =
        pam::ToParallelAlgorithm(request.algorithm);
    const std::string machine = flags.GetString("machine", "t3e");
    const pam::CostModel model(machine == "sp2"
                                   ? pam::MachineModel::IbmSp2()
                                   : pam::MachineModel::CrayT3E());
    if (flags.GetBool("explain", false)) {
      std::printf("%s", pam::ExplainRun(model, algorithm,
                                        report.metrics)
                            .c_str());
    } else {
      std::printf("modeled %s response time: %.3fs\n",
                  model.machine().name.c_str(),
                  model.RunTime(algorithm, report.metrics));
    }
  }

  if (flags.Has("trace-out")) {
    const std::string out_path = flags.GetString("trace-out", "");
    const pam::Status status = trace_writer.WriteFile(out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s (open in chrome://tracing)\n",
                trace_writer.size(), out_path.c_str());
  }
  if (flags.Has("metrics-out")) {
    const std::string out_path = flags.GetString("metrics-out", "");
    const pam::Status status = metrics_writer.WriteFile(out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote run metrics to %s\n", out_path.c_str());
  }

  if (flags.Has("save-itemsets")) {
    const std::string out_path = flags.GetString("save-itemsets", "");
    const pam::Status status =
        pam::WriteFrequentItemsets(frequent, out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("saved frequent itemsets to %s\n", out_path.c_str());
  }

  if (flags.GetBool("maximal", false)) {
    pam::FrequentItemsets maximal = pam::ExtractMaximal(frequent);
    std::printf("maximal ");
    PrintItemsets(maximal, db.size(), top);
  } else {
    PrintItemsets(frequent, db.size(), top);
  }

  if (request.generate_rules) {
    std::printf("\nrules at %.0f%% confidence: %zu\n",
                request.min_confidence * 100.0, report.rules.size());
    for (std::size_t i = 0; i < report.rules.size() && i < top; ++i) {
      std::printf("  %s\n", report.rules[i].ToString().c_str());
    }
  }
  return 0;
}
