// pam_client: the network client of pam_serve --listen. Speaks the
// versioned wire protocol (src/pam/serve/protocol.h) over TCP and reads
// the exact same text line protocol as the server's script mode, so a
// request script runs unchanged against an in-process or a remote server:
//
//   pam_serve --datasets retail=retail.bin --listen --port-file p &
//   pam_client --port-file p <<'EOF'
//   mine id=r1 tenant=acme dataset=retail algorithm=hd ranks=4 minsup=2
//   stats
//   EOF
//
// Responses print in arrival order (the server schedules by weighted fair
// queueing, so completion order is not submission order — ids correlate).
// Exit code 1 when any response is a mining fault, the stream dies early,
// or a line fails to parse; 0 otherwise.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "pam/serve/net_server.h"
#include "pam/serve/protocol.h"
#include "pam/util/flags.h"

namespace {

constexpr const char* kUsage = R"(usage: pam_client [flags] < requests
  --host H       server host (default 127.0.0.1)
  --port P       server port
  --port-file F  read the port from F (written by pam_serve --port-file)
  --script F     read request lines from F instead of stdin
  --quiet        print only warnings and errors
request lines: same as pam_serve script mode —
  mine id=TAG tenant=NAME dataset=NAME [algorithm=ALG] [ranks=P]
       [minsup=PCT] [minconf=PCT] [rules] [threads=T] [max-k=K]
       [deadline-ms=D]
  cancel TAG
  stats
  shutdown       ask the daemon to drain and exit (needs --allow-shutdown)
)";

/// What we remember about an in-flight mine tag, to render its response.
struct Submitted {
  std::string id;
  std::string tenant;
  std::string dataset;
};

}  // namespace

int main(int argc, char** argv) {
  pam::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(), kUsage);
    return 2;
  }
  for (const std::string& f : flags.UnknownFlags(
           {"host", "port", "port-file", "script", "quiet", "help"})) {
    std::fprintf(stderr, "error: unknown flag --%s\n%s", f.c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false)) {
    std::fputs(kUsage, stdout);
    return 0;
  }

  int port = static_cast<int>(flags.GetInt("port", 0));
  if (flags.Has("port-file")) {
    std::ifstream port_file(flags.GetString("port-file", ""));
    if (!(port_file >> port)) {
      std::fprintf(stderr, "error: cannot read --port-file %s\n",
                   flags.GetString("port-file", "").c_str());
      return 2;
    }
  }
  if (port <= 0) {
    std::fprintf(stderr, "error: --port or --port-file required\n%s",
                 kUsage);
    return 2;
  }

  pam::serve::NetClient client;
  const std::string host = flags.GetString("host", "127.0.0.1");
  pam::Status status = client.Connect(host, port);
  if (!status.ok()) {
    std::fprintf(stderr, "error: connect %s:%d: %s\n", host.c_str(), port,
                 status.message().c_str());
    return 1;
  }

  std::ifstream script;
  if (flags.Has("script")) {
    script.open(flags.GetString("script", ""));
    if (!script) {
      std::fprintf(stderr, "error: cannot open --script %s\n",
                   flags.GetString("script", "").c_str());
      return 2;
    }
  }
  std::istream& in = flags.Has("script") ? script : std::cin;
  const bool quiet = flags.GetBool("quiet", false);

  // Send everything first; the server pipelines and responses arrive as
  // they complete. Tags are assigned locally; ids map onto them so
  // `cancel TAG` lines and response rendering keep the script's names.
  std::map<std::uint64_t, Submitted> inflight;
  std::map<std::string, std::uint64_t> tag_of_id;
  std::uint64_t next_tag = 1;
  std::size_t expected = 0;  // kResponse + kStatsResponse frames due back
  int failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    pam::Result<pam::serve::Command> parsed =
        pam::serve::ParseCommandLine(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "warning: %s; line ignored\n",
                   parsed.status().message().c_str());
      ++failures;
      continue;
    }
    pam::serve::Command& command = parsed.value();
    status = pam::Status::Ok();
    switch (command.verb) {
      case pam::serve::Command::Verb::kNone:
        break;
      case pam::serve::Command::Verb::kMine: {
        const std::uint64_t tag = next_tag++;
        Submitted s;
        s.id = command.id.empty() ? "req" + std::to_string(tag)
                                  : command.id;
        s.tenant = command.request.tenant;
        s.dataset = command.request.dataset;
        tag_of_id[s.id] = tag;
        inflight[tag] = std::move(s);
        ++expected;
        status = client.SendMine(tag, command.request);
        break;
      }
      case pam::serve::Command::Verb::kCancel: {
        auto it = tag_of_id.find(command.id);
        if (it == tag_of_id.end()) {
          std::fprintf(stderr,
                       "warning: cancel of unknown id '%s' ignored\n",
                       command.id.c_str());
          ++failures;
        } else {
          status = client.SendCancel(it->second);
        }
        break;
      }
      case pam::serve::Command::Verb::kStats:
        ++expected;
        status = client.SendStats(next_tag++);
        break;
      case pam::serve::Command::Verb::kShutdown:
        status = client.SendShutdown();
        break;
    }
    if (!status.ok()) {
      std::fprintf(stderr, "error: send: %s\n", status.message().c_str());
      return 1;
    }
  }
  // Half-close: tells the server this is everything; pending responses
  // still flow back until the stream drains.
  client.CloseWrite();

  while (expected > 0) {
    pam::Result<pam::serve::NetClient::ServerFrame> received =
        client.Recv();
    if (!received.ok()) {
      std::fprintf(stderr, "error: %s (%zu responses outstanding)\n",
                   received.status().message().c_str(), expected);
      return 1;
    }
    pam::serve::NetClient::ServerFrame& frame = received.value();
    switch (frame.type) {
      case pam::serve::FrameType::kResponse: {
        --expected;
        auto it = inflight.find(frame.response.tag);
        const Submitted s =
            it == inflight.end() ? Submitted{} : it->second;
        if (it != inflight.end()) inflight.erase(it);
        if (!quiet) {
          std::printf(
              "%s\n",
              pam::serve::FormatResponseLine(
                  s.id, s.tenant, s.dataset, frame.response.status,
                  frame.response.error,
                  frame.response.frequent.TotalCount(),
                  frame.response.rules.size(),
                  frame.response.queue_seconds * 1e3,
                  frame.response.service_seconds * 1e3,
                  frame.response.from_result_cache)
                  .c_str());
        }
        if (frame.response.status == pam::serve::ServeStatus::kMiningFault) {
          ++failures;
        }
        break;
      }
      case pam::serve::FrameType::kStatsResponse:
        --expected;
        std::fputs(
            pam::serve::FormatStatsSummary(frame.stats.stats).c_str(),
            stdout);
        break;
      case pam::serve::FrameType::kError:
        // Per-request refusals (unknown tag, forbidden shutdown) leave
        // the stream healthy; anything else means the connection is done.
        std::fprintf(stderr, "warning: server error: %s: %s\n",
                     pam::serve::WireErrorName(frame.error.error),
                     frame.error.message.c_str());
        ++failures;
        if (pam::serve::WireErrorClosesConnection(frame.error.error)) {
          return 1;
        }
        break;
      default:
        std::fprintf(stderr, "warning: unexpected frame type %d\n",
                     static_cast<int>(frame.type));
        ++failures;
        break;
    }
  }
  client.Close();
  return failures == 0 ? 0 : 1;
}
