// pam_gen: generate IBM-Quest-style synthetic market-basket data (the
// T..I..D.. datasets of Agrawal & Srikant used by the paper's evaluation).
//
//   pam_gen --transactions 100000 --items 1000 --avg-len 15
//           --pattern-len 6 --patterns 2000 --seed 7
//           --output t15i6.bin [--text]
//
// Writes the binary format by default (see pam/tdb/io.h); --text writes
// whitespace-separated item ids, one transaction per line.

#include <cstdio>

#include "pam/datagen/quest_gen.h"
#include "pam/tdb/io.h"
#include "pam/util/flags.h"
#include "pam/util/timer.h"

namespace {

constexpr const char* kUsage = R"(usage: pam_gen [flags]
  --transactions N   number of transactions (default 10000)
  --items N          distinct items (default 1000)
  --avg-len T        average transaction length (default 15)
  --pattern-len I    average pattern length (default 6)
  --patterns L       size of the pattern pool (default 2000)
  --correlation C    cross-pattern correlation (default 0.5)
  --corruption C     mean corruption level (default 0.5)
  --hot-items H      skewed-prefix mode: size of the hot item prefix
                     (default 0 = off)
  --hot-mass F       probability an item draw lands in the hot prefix
                     (default 0; needs --hot-items)
  --seed S           PRNG seed (default 1)
  --output PATH      output file (required)
  --text             write the text format instead of binary
)";

}  // namespace

int main(int argc, char** argv) {
  pam::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(), kUsage);
    return 2;
  }
  const std::vector<std::string> known = {
      "transactions", "items",       "avg-len",    "pattern-len",
      "patterns",     "correlation", "corruption", "seed",
      "output",       "text",        "help",       "hot-items",
      "hot-mass"};
  for (const std::string& f : flags.UnknownFlags(known)) {
    std::fprintf(stderr, "error: unknown flag --%s\n%s", f.c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("output")) {
    std::fputs(kUsage, flags.Has("output") ? stdout : stderr);
    return flags.GetBool("help", false) ? 0 : 2;
  }

  pam::QuestConfig config;
  config.num_transactions =
      static_cast<std::size_t>(flags.GetInt("transactions", 10000));
  config.num_items = static_cast<pam::Item>(flags.GetInt("items", 1000));
  config.avg_transaction_len = flags.GetDouble("avg-len", 15.0);
  config.avg_pattern_len = flags.GetDouble("pattern-len", 6.0);
  config.num_patterns =
      static_cast<std::size_t>(flags.GetInt("patterns", 2000));
  config.correlation = flags.GetDouble("correlation", 0.5);
  config.corruption_mean = flags.GetDouble("corruption", 0.5);
  config.hot_items = static_cast<pam::Item>(flags.GetInt("hot-items", 0));
  config.hot_item_mass = flags.GetDouble("hot-mass", 0.0);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  pam::WallTimer timer;
  pam::TransactionDatabase db = pam::GenerateQuest(config);
  const std::string path = flags.GetString("output", "");
  const pam::Status status = flags.GetBool("text", false)
                                 ? pam::WriteText(db, path)
                                 : pam::WriteBinary(db, path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 1;
  }
  std::printf(
      "wrote %zu transactions (%zu items, avg length %.2f) to %s in "
      "%.2fs\n",
      db.size(), static_cast<std::size_t>(db.NumItems()),
      db.AverageLength(), path.c_str(), timer.Seconds());
  return 0;
}
