// pam_serve: mining-as-a-service — a long-lived multi-tenant daemon over
// the MiningSession facade. Datasets are registered up front and cached as
// shared immutable payload pages; requests stream in as text lines (stdin
// or --script), are admission-controlled against the bounded queue and
// per-tenant quotas, and execute concurrently over the shared rank pool.
//
//   pam_serve --datasets retail=retail.bin,web=web.bin --ranks 8 <<'EOF'
//   mine id=r1 tenant=acme dataset=retail algorithm=hd ranks=4 minsup=2
//   mine id=r2 tenant=acme dataset=retail algorithm=serial minsup=2 rules
//   mine id=r3 tenant=zeta dataset=web algorithm=idd ranks=2 minsup=1.5
//   EOF
//
// Responses print in submission order once the input is exhausted, then a
// server-counter summary (queue peaks, cache hits, typed rejections).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pam/obs/chrome_trace.h"
#include "pam/serve/server.h"
#include "pam/tdb/io.h"
#include "pam/util/flags.h"

namespace {

constexpr const char* kUsage = R"(usage: pam_serve [flags] < requests
  --datasets LIST    dataset catalog NAME=PATH[,NAME=PATH...] (required)
  --format FMT       binary | text basket files (default binary)
  --ranks P          shared rank pool size (default 8)
  --workers W        worker threads (default 4)
  --queue N          admission queue bound (default 64)
  --tenant-inflight N  per-tenant max in-flight requests (default 0 = off)
  --tenant-budget S  per-tenant rank-seconds budget (default 0 = off)
  --page-bytes B     dataset cache wire-page size (default 65536)
  --default-deadline-ms D  deadline for requests carrying none (0 = off)
  --cache-budget-mb M  dataset cache resident budget in MiB (0 = off)
  --watchdog-ms W    cancel runs with no progress heartbeat for W ms (0 = off)
  --script F         read request lines from F instead of stdin
  --trace-out F      write the serve_request span timeline to F
  --quiet            print only the final counter summary

request lines (one per request; '#' starts a comment):
  mine id=TAG tenant=NAME dataset=NAME [algorithm=ALG] [ranks=P]
       [minsup=PCT] [minconf=PCT] [rules] [threads=T] [max-k=K]
       [deadline-ms=D]
  cancel TAG         fire the cancel token of an earlier mine line
)";

struct PendingRequest {
  std::string id;
  std::string tenant;
  std::string dataset;
  std::future<pam::serve::ServeResponse> future;
};

/// Splits a request line into whitespace-separated tokens; `key=value`
/// tokens land in the map, bare tokens (e.g. `rules`) map to "true".
bool ParseRequestLine(const std::string& line, std::string* verb,
                      std::map<std::string, std::string>* kv) {
  std::istringstream in(line);
  if (!(in >> *verb)) return false;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      (*kv)[token] = "true";
    } else {
      (*kv)[token.substr(0, eq)] = token.substr(eq + 1);
    }
  }
  return true;
}

std::string Lookup(const std::map<std::string, std::string>& kv,
                   const std::string& key, const std::string& fallback) {
  auto it = kv.find(key);
  return it == kv.end() ? fallback : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  pam::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(), kUsage);
    return 2;
  }
  const std::vector<std::string> known = {
      "datasets", "format", "ranks",    "workers",   "queue",
      "tenant-inflight",    "tenant-budget",         "page-bytes",
      "default-deadline-ms", "cache-budget-mb",      "watchdog-ms",
      "script",   "trace-out", "quiet", "help"};
  for (const std::string& f : flags.UnknownFlags(known)) {
    std::fprintf(stderr, "error: unknown flag --%s\n%s", f.c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("datasets")) {
    std::fputs(kUsage, flags.Has("datasets") ? stdout : stderr);
    return flags.GetBool("help", false) ? 0 : 2;
  }

  pam::serve::ServerConfig config;
  config.pool_ranks = static_cast<int>(flags.GetInt("ranks", 8));
  config.workers = static_cast<int>(flags.GetInt("workers", 4));
  config.max_queue =
      static_cast<std::size_t>(flags.GetInt("queue", 64));
  config.default_quota.max_in_flight =
      static_cast<int>(flags.GetInt("tenant-inflight", 0));
  config.default_quota.rank_seconds = flags.GetDouble("tenant-budget", 0.0);
  config.cache_page_bytes =
      static_cast<std::size_t>(flags.GetInt("page-bytes", 64 * 1024));
  config.default_deadline_ms = flags.GetDouble("default-deadline-ms", 0.0);
  config.cache_budget_bytes = static_cast<std::size_t>(
      flags.GetDouble("cache-budget-mb", 0.0) * 1024.0 * 1024.0);
  config.watchdog_ms = flags.GetDouble("watchdog-ms", 0.0);

  pam::serve::MiningServer server(config);
  pam::obs::ChromeTraceWriter trace_writer;
  if (flags.Has("trace-out")) server.AddTraceSink(&trace_writer);

  // Register the catalog: NAME=PATH pairs, loaded lazily by the cache on
  // the first request that names them.
  const std::string format = flags.GetString("format", "binary");
  std::stringstream catalog(flags.GetString("datasets", ""));
  std::string entry;
  std::size_t registered = 0;
  while (std::getline(catalog, entry, ',')) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      std::fprintf(stderr, "error: bad --datasets entry '%s'\n",
                   entry.c_str());
      return 2;
    }
    const std::string name = entry.substr(0, eq);
    const std::string path = entry.substr(eq + 1);
    server.datasets().Register(name, [path, format] {
      return format == "text" ? pam::ReadText(path) : pam::ReadBinary(path);
    });
    ++registered;
  }
  if (registered == 0) {
    std::fprintf(stderr, "error: --datasets names no datasets\n%s", kUsage);
    return 2;
  }

  const bool quiet = flags.GetBool("quiet", false);
  std::printf("pam_serve: %zu datasets, %d ranks, %d workers, queue %zu\n",
              registered, config.pool_ranks, config.workers,
              config.max_queue);

  std::ifstream script;
  if (flags.Has("script")) {
    script.open(flags.GetString("script", ""));
    if (!script) {
      std::fprintf(stderr, "error: cannot open --script %s\n",
                   flags.GetString("script", "").c_str());
      return 2;
    }
  }
  std::istream& in = flags.Has("script") ? script : std::cin;

  std::vector<PendingRequest> pending;
  // Every mine line gets a client-held CancelToken; a later `cancel TAG`
  // line fires it — the server observes the shared token and sheds the
  // request whether it is still queued or already mid-run.
  std::map<std::string, pam::CancelToken> tokens;
  std::string line;
  int bad_lines = 0;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string verb;
    std::map<std::string, std::string> kv;
    if (!ParseRequestLine(line, &verb, &kv)) continue;  // blank
    if (verb == "cancel") {
      const std::string target =
          kv.empty() ? std::string() : kv.begin()->first;
      auto it = tokens.find(target);
      if (it == tokens.end()) {
        std::fprintf(stderr, "warning: cancel of unknown id '%s' ignored\n",
                     target.c_str());
        ++bad_lines;
      } else {
        it->second.Cancel();
      }
      continue;
    }
    if (verb != "mine") {
      std::fprintf(stderr, "warning: unknown verb '%s' ignored\n",
                   verb.c_str());
      ++bad_lines;
      continue;
    }
    pam::MiningRequest request;
    request.tenant = Lookup(kv, "tenant", "anonymous");
    request.dataset = Lookup(kv, "dataset", "");
    const std::string algorithm = Lookup(kv, "algorithm", "serial");
    if (!pam::ParseMiningAlgorithm(algorithm, &request.algorithm)) {
      std::fprintf(stderr, "warning: unknown algorithm '%s' ignored\n",
                   algorithm.c_str());
      ++bad_lines;
      continue;
    }
    request.num_ranks = std::atoi(Lookup(kv, "ranks", "4").c_str());
    request.config.apriori.minsup_fraction =
        std::atof(Lookup(kv, "minsup", "1.0").c_str()) / 100.0;
    request.config.apriori.threads_per_rank =
        std::atoi(Lookup(kv, "threads", "1").c_str());
    request.config.apriori.max_k =
        std::atoi(Lookup(kv, "max-k", "0").c_str());
    request.generate_rules = Lookup(kv, "rules", "false") == "true";
    request.min_confidence =
        std::atof(Lookup(kv, "minconf", "50").c_str()) / 100.0;
    request.deadline_ms = std::atof(Lookup(kv, "deadline-ms", "0").c_str());

    PendingRequest p;
    p.id = Lookup(kv, "id", "req" + std::to_string(pending.size()));
    p.tenant = request.tenant;
    p.dataset = request.dataset;
    request.cancel = pam::CancelToken::Create();
    tokens[p.id] = request.cancel;
    p.future = server.Submit(std::move(request));
    pending.push_back(std::move(p));
  }

  int failures = bad_lines;
  for (PendingRequest& p : pending) {
    pam::serve::ServeResponse response = p.future.get();
    if (!quiet) {
      if (response.ok()) {
        std::printf(
            "response id=%s tenant=%s dataset=%s status=ok itemsets=%zu "
            "rules=%zu queue_ms=%.2f service_ms=%.2f\n",
            p.id.c_str(), p.tenant.c_str(), p.dataset.c_str(),
            response.report.frequent.TotalCount(),
            response.report.rules.size(), response.queue_seconds * 1e3,
            response.service_seconds * 1e3);
      } else {
        std::printf("response id=%s tenant=%s dataset=%s status=%s "
                    "error=\"%s\"\n",
                    p.id.c_str(), p.tenant.c_str(), p.dataset.c_str(),
                    pam::serve::ServeStatusName(response.status),
                    response.error.c_str());
      }
    }
    // Deadline and cancel outcomes are expected typed responses, not tool
    // failures; only infrastructure faults flip the exit code.
    if (response.status == pam::serve::ServeStatus::kMiningFault) ++failures;
  }

  server.Shutdown();
  const pam::serve::ServerStats stats = server.Stats();
  std::printf(
      "served %llu/%llu requests (%llu ok, %llu faulted, %llu cancelled, "
      "%llu deadline_exceeded [%llu expired_in_queue], %llu rejected: "
      "%llu queue_full, %llu quota, %llu budget, %llu unknown_dataset)\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.mining_faults),
      static_cast<unsigned long long>(stats.cancelled),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.expired_in_queue),
      static_cast<unsigned long long>(stats.TotalRejected()),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.rejected_tenant_in_flight),
      static_cast<unsigned long long>(stats.rejected_tenant_budget),
      static_cast<unsigned long long>(stats.rejected_unknown_dataset));
  std::printf(
      "cache: %llu hits, %llu misses, %llu evictions, %zu resident bytes; "
      "peak queue %zu; %llu watchdog fires; %.3f rank-seconds charged\n",
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      server.datasets().ResidentBytes(), stats.peak_queue_depth,
      static_cast<unsigned long long>(stats.watchdog_fired),
      stats.rank_seconds_charged);

  if (flags.Has("trace-out")) {
    const std::string out_path = flags.GetString("trace-out", "");
    const pam::Status status = trace_writer.WriteFile(out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %zu serve trace events to %s\n", trace_writer.size(),
                out_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
