// pam_serve: mining-as-a-service — a long-lived multi-tenant daemon over
// the MiningSession facade. Datasets are registered up front and cached as
// shared immutable payload pages; requests are admission-controlled
// against the bounded queue and per-tenant quotas, scheduled by weighted
// fair queueing, and execute concurrently over the shared rank pool.
//
// Two front-ends over the same server and the same protocol module
// (src/pam/serve/protocol.h):
//
//   # script mode (default): text command lines on stdin or --script
//   pam_serve --datasets retail=retail.bin,web=web.bin --ranks 8 <<'EOF'
//   mine id=r1 tenant=acme dataset=retail algorithm=hd ranks=4 minsup=2
//   mine id=r2 tenant=acme dataset=retail algorithm=serial minsup=2 rules
//   cancel r1
//   EOF
//
//   # network mode: the versioned length-prefixed wire protocol over TCP
//   pam_serve --datasets retail=retail.bin --listen --port 7733
//   pam_client --port 7733 <<'EOF'
//   mine id=r1 tenant=acme dataset=retail algorithm=hd ranks=4 minsup=2
//   EOF
//
// Script mode prints responses in submission order once the input is
// exhausted, then a server-counter summary. Network mode serves until
// SIGINT/SIGTERM or (with --allow-shutdown) a client shutdown frame.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pam/obs/chrome_trace.h"
#include "pam/serve/net_server.h"
#include "pam/serve/protocol.h"
#include "pam/serve/server.h"
#include "pam/tdb/io.h"
#include "pam/util/flags.h"

namespace {

constexpr const char* kUsage = R"(usage: pam_serve [flags] < requests
  --datasets LIST    dataset catalog NAME=PATH[,NAME=PATH...] (required)
  --format FMT       binary | text basket files (default binary)
  --ranks P          shared rank pool size (default 8)
  --workers W        worker threads (default 4)
  --queue N          admission queue bound (default 64)
  --tenant-inflight N  per-tenant max in-flight requests (default 0 = off)
  --tenant-budget S  per-tenant rank-seconds budget (default 0 = off)
  --tenant-weights L fair-queueing weights NAME=W[,NAME=W...] (default 1)
  --page-bytes B     dataset cache wire-page size (default 65536)
  --default-deadline-ms D  deadline for requests carrying none (0 = off)
  --cache-budget-mb M  dataset cache resident budget in MiB (0 = off)
  --watchdog-ms W    cancel runs with no progress heartbeat for W ms (0 = off)
  --result-cache     serve repeated identical requests from the result cache
  --result-cache-budget-mb M  result cache resident budget in MiB (0 = off)
  --result-cache-ttl-ms T     result cache idle TTL (0 = never)
  --script F         read request lines from F instead of stdin
  --trace-out F      write the serve_request span timeline to F
  --quiet            print only the final counter summary
network mode:
  --listen           serve the wire protocol over TCP instead of stdin
  --bind ADDR        listen address (default 127.0.0.1)
  --port P           listen port (default 0 = ephemeral; printed at start)
  --port-file F      write the bound port to F (for scripted clients)
  --allow-shutdown   honor client shutdown frames (for CI smoke)

request lines (one per request; '#' starts a comment):
  mine id=TAG tenant=NAME dataset=NAME [algorithm=ALG] [ranks=P]
       [minsup=PCT] [minconf=PCT] [rules] [threads=T] [max-k=K]
       [deadline-ms=D]
  cancel TAG         fire the cancel token of an earlier mine line
  stats              print the server counter summary so far
)";

struct PendingRequest {
  std::string id;
  std::string tenant;
  std::string dataset;
  std::future<pam::serve::ServeResponse> future;
};

/// Parses NAME=VALUE comma lists (datasets, tenant weights).
bool ParsePairs(const std::string& list,
                std::vector<std::pair<std::string, std::string>>* pairs) {
  std::stringstream in(list);
  std::string entry;
  while (std::getline(in, entry, ',')) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      return false;
    }
    pairs->emplace_back(entry.substr(0, eq), entry.substr(eq + 1));
  }
  return true;
}

volatile std::sig_atomic_t g_interrupted = 0;
pam::serve::NetServer* g_net = nullptr;

void HandleSignal(int) {
  g_interrupted = 1;
  // Stop() is not async-signal-safe in general; flag + a second wake via
  // the process dying is the fallback. In practice the CI path uses the
  // shutdown frame, and interactive ^C lands here between poll rounds.
  if (g_net != nullptr) g_net->Stop();
}

int RunScriptMode(pam::serve::MiningServer& server, std::istream& in,
                  bool quiet) {
  std::vector<PendingRequest> pending;
  // Every mine line gets a client-held CancelToken; a later `cancel TAG`
  // line fires it — the server observes the shared token and sheds the
  // request whether it is still queued or already mid-run.
  std::map<std::string, pam::CancelToken> tokens;
  std::string line;
  int bad_lines = 0;
  while (std::getline(in, line)) {
    pam::Result<pam::serve::Command> parsed =
        pam::serve::ParseCommandLine(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "warning: %s; line ignored\n",
                   parsed.status().message().c_str());
      ++bad_lines;
      continue;
    }
    pam::serve::Command& command = parsed.value();
    switch (command.verb) {
      case pam::serve::Command::Verb::kNone:
        break;
      case pam::serve::Command::Verb::kCancel: {
        auto it = tokens.find(command.id);
        if (it == tokens.end()) {
          std::fprintf(stderr,
                       "warning: cancel of unknown id '%s' ignored\n",
                       command.id.c_str());
          ++bad_lines;
        } else {
          it->second.Cancel();
        }
        break;
      }
      case pam::serve::Command::Verb::kStats:
        std::fputs(
            pam::serve::FormatStatsSummary(server.Stats()).c_str(),
            stdout);
        break;
      case pam::serve::Command::Verb::kShutdown:
        // Script mode already shuts down at EOF; nothing extra to do.
        break;
      case pam::serve::Command::Verb::kMine: {
        PendingRequest p;
        p.id = command.id.empty() ? "req" + std::to_string(pending.size())
                                  : command.id;
        p.tenant = command.request.tenant;
        p.dataset = command.request.dataset;
        command.request.cancel = pam::CancelToken::Create();
        tokens[p.id] = command.request.cancel;
        p.future = server.Submit(std::move(command.request));
        pending.push_back(std::move(p));
        break;
      }
    }
  }

  int failures = bad_lines;
  for (PendingRequest& p : pending) {
    pam::serve::ServeResponse response = p.future.get();
    if (!quiet) {
      std::printf("%s\n",
                  pam::serve::FormatResponseLine(
                      p.id, p.tenant, p.dataset, response.status,
                      response.error, response.report.frequent.TotalCount(),
                      response.report.rules.size(),
                      response.queue_seconds * 1e3,
                      response.service_seconds * 1e3,
                      response.from_result_cache)
                      .c_str());
    }
    // Deadline and cancel outcomes are expected typed responses, not tool
    // failures; only infrastructure faults flip the exit code.
    if (response.status == pam::serve::ServeStatus::kMiningFault) ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  pam::FlagParser flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(), kUsage);
    return 2;
  }
  const std::vector<std::string> known = {
      "datasets", "format", "ranks",    "workers",   "queue",
      "tenant-inflight",    "tenant-budget",         "tenant-weights",
      "page-bytes",         "default-deadline-ms",   "cache-budget-mb",
      "watchdog-ms",        "result-cache",          "result-cache-budget-mb",
      "result-cache-ttl-ms",
      "listen",   "bind",   "port",     "port-file", "allow-shutdown",
      "script",   "trace-out", "quiet", "help"};
  for (const std::string& f : flags.UnknownFlags(known)) {
    std::fprintf(stderr, "error: unknown flag --%s\n%s", f.c_str(), kUsage);
    return 2;
  }
  if (flags.GetBool("help", false) || !flags.Has("datasets")) {
    std::fputs(kUsage, flags.Has("datasets") ? stdout : stderr);
    return flags.GetBool("help", false) ? 0 : 2;
  }

  pam::serve::ServerConfig config;
  config.pool_ranks = static_cast<int>(flags.GetInt("ranks", 8));
  config.workers = static_cast<int>(flags.GetInt("workers", 4));
  config.max_queue =
      static_cast<std::size_t>(flags.GetInt("queue", 64));
  config.default_quota.max_in_flight =
      static_cast<int>(flags.GetInt("tenant-inflight", 0));
  config.default_quota.rank_seconds = flags.GetDouble("tenant-budget", 0.0);
  config.cache_page_bytes =
      static_cast<std::size_t>(flags.GetInt("page-bytes", 64 * 1024));
  config.default_deadline_ms = flags.GetDouble("default-deadline-ms", 0.0);
  config.cache_budget_bytes = static_cast<std::size_t>(
      flags.GetDouble("cache-budget-mb", 0.0) * 1024.0 * 1024.0);
  config.watchdog_ms = flags.GetDouble("watchdog-ms", 0.0);
  config.result_cache = flags.GetBool("result-cache", false);
  config.result_cache_budget_bytes = static_cast<std::size_t>(
      flags.GetDouble("result-cache-budget-mb", 0.0) * 1024.0 * 1024.0);
  config.result_cache_ttl_ms = flags.GetDouble("result-cache-ttl-ms", 0.0);
  if (flags.Has("tenant-weights")) {
    std::vector<std::pair<std::string, std::string>> weights;
    if (!ParsePairs(flags.GetString("tenant-weights", ""), &weights)) {
      std::fprintf(stderr, "error: bad --tenant-weights entry\n%s", kUsage);
      return 2;
    }
    for (const auto& [tenant, weight] : weights) {
      pam::serve::TenantQuota quota = config.default_quota;
      quota.weight = std::atof(weight.c_str());
      config.tenant_quotas[tenant] = quota;
    }
  }

  pam::serve::MiningServer server(config);
  pam::obs::ChromeTraceWriter trace_writer;
  if (flags.Has("trace-out")) server.AddTraceSink(&trace_writer);

  // Register the catalog: NAME=PATH pairs, loaded lazily by the cache on
  // the first request that names them.
  const std::string format = flags.GetString("format", "binary");
  std::vector<std::pair<std::string, std::string>> catalog;
  if (!ParsePairs(flags.GetString("datasets", ""), &catalog) ||
      catalog.empty()) {
    std::fprintf(stderr, "error: bad --datasets list\n%s", kUsage);
    return 2;
  }
  for (const auto& [name, path] : catalog) {
    server.datasets().Register(name, [path, format] {
      return format == "text" ? pam::ReadText(path) : pam::ReadBinary(path);
    });
  }

  const bool quiet = flags.GetBool("quiet", false);
  std::printf("pam_serve: %zu datasets, %d ranks, %d workers, queue %zu\n",
              catalog.size(), config.pool_ranks, config.workers,
              config.max_queue);

  int failures = 0;
  if (flags.GetBool("listen", false)) {
    pam::serve::NetServerConfig net_config;
    net_config.bind_address = flags.GetString("bind", "127.0.0.1");
    net_config.port = static_cast<int>(flags.GetInt("port", 0));
    net_config.allow_shutdown = flags.GetBool("allow-shutdown", false);
    pam::serve::NetServer net(&server, net_config);
    const pam::Status status = net.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("listening on %s:%d\n", net_config.bind_address.c_str(),
                net.port());
    std::fflush(stdout);
    if (flags.Has("port-file")) {
      std::ofstream port_file(flags.GetString("port-file", ""));
      port_file << net.port() << "\n";
      if (!port_file) {
        std::fprintf(stderr, "error: cannot write --port-file\n");
        return 1;
      }
    }
    g_net = &net;
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    const bool remote_shutdown = net.WaitForShutdownRequest();
    std::printf(remote_shutdown ? "shutdown requested by client\n"
                                : "interrupted\n");
    // Drain the mining server first so every accepted request's response
    // frame is queued, then stop the front-end (it flushes what it can).
    server.Shutdown();
    net.Stop();
    g_net = nullptr;
  } else {
    std::ifstream script;
    if (flags.Has("script")) {
      script.open(flags.GetString("script", ""));
      if (!script) {
        std::fprintf(stderr, "error: cannot open --script %s\n",
                     flags.GetString("script", "").c_str());
        return 2;
      }
    }
    std::istream& in = flags.Has("script") ? script : std::cin;
    failures = RunScriptMode(server, in, quiet);
    server.Shutdown();
  }

  std::fputs(pam::serve::FormatStatsSummary(server.Stats()).c_str(),
             stdout);

  if (flags.Has("trace-out")) {
    const std::string out_path = flags.GetString("trace-out", "");
    const pam::Status status = trace_writer.WriteFile(out_path);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %zu serve trace events to %s\n", trace_writer.size(),
                out_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
